package sweep

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"rfpsim/internal/experiments"
	"rfpsim/internal/obs"
	"rfpsim/internal/service"
)

// Options configures one orchestrator run.
type Options struct {
	// Parallel bounds concurrent units in flight (0 = 4; against an HTTP
	// fleet, size it to the fleet's aggregate worker count).
	Parallel int
	// CheckpointPath, when set, journals every completed unit and (with
	// Resume) skips units already recorded.
	CheckpointPath string
	// Resume replays the checkpoint before running; without it an
	// existing checkpoint is appended to but not consulted.
	Resume bool
	// Progress, when set, receives a one-line progress/ETA report every
	// ProgressEvery (default 5s) and once at the end.
	Progress      io.Writer
	ProgressEvery time.Duration
}

func (o Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return 4
}

func (o Options) progressEvery() time.Duration {
	if o.ProgressEvery > 0 {
		return o.ProgressEvery
	}
	return 5 * time.Second
}

// UnitError is one terminally failed unit.
type UnitError struct {
	Unit Unit
	Err  error
}

// Summary is the outcome of an orchestrator run.
type Summary struct {
	// Units is the sweep grid in deterministic order.
	Units []Unit
	// Results maps unit key to result for every completed unit (including
	// checkpoint-replayed ones).
	Results map[string]*service.SimResponse
	// Timings maps unit key to the per-stage wall-clock breakdown of
	// units executed by THIS run — checkpoint-replayed units have none
	// (their cost was paid by an earlier run). Local-backend timings come
	// straight from the runner; HTTP-backend timings are the executing
	// daemon's, parsed from the response header. Timings are telemetry
	// and deliberately kept out of Results, the checkpoint journal and
	// the aggregate CSV, all of which are pinned deterministic.
	Timings map[string]*obs.Timings
	// Skipped counts units satisfied by the checkpoint.
	Skipped int
	// Failed lists units that exhausted their retries.
	Failed []UnitError
}

// Complete reports whether every unit has a result.
func (s *Summary) Complete() bool { return len(s.Results) >= len(s.Units) }

// Run executes the sweep: checkpoint replay, bounded-parallel dispatch to
// the backend, journalling, and progress reporting. Cancelling ctx stops
// dispatch and returns ctx's error; completed units are already journalled,
// so a later Resume run picks up exactly the missing ones. Unit failures
// do not abort the sweep — the rest of the grid still runs — but are
// reported in the summary and as an error.
func Run(ctx context.Context, units []Unit, backend Backend, opts Options, m *Metrics) (*Summary, error) {
	if m == nil {
		m = &Metrics{}
	}
	m.total.Store(uint64(len(units)))
	sum := &Summary{
		Units:   units,
		Results: make(map[string]*service.SimResponse, len(units)),
		Timings: make(map[string]*obs.Timings, len(units)),
	}

	if opts.Resume && opts.CheckpointPath != "" {
		st, err := LoadCheckpoint(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			if resp, ok := st.Results[u.Key]; ok {
				sum.Results[u.Key] = resp
				sum.Skipped++
			}
		}
		m.skipped.Store(uint64(sum.Skipped))
		if opts.Progress != nil && (sum.Skipped > 0 || st.TruncatedTail) {
			fmt.Fprintf(opts.Progress, "rfpsweep: checkpoint replayed %d/%d units (%d journal entries, %d duplicates, truncated tail: %t)\n",
				sum.Skipped, len(units), st.Entries, st.Duplicates, st.TruncatedTail)
		}
	}

	var journal *Journal
	if opts.CheckpointPath != "" {
		var err error
		journal, err = OpenJournal(opts.CheckpointPath)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	pending := make([]Unit, 0, len(units))
	for _, u := range units {
		if _, done := sum.Results[u.Key]; !done {
			pending = append(pending, u)
		}
	}

	start := time.Now()
	progress := func(final bool) {
		done, failed := m.done.Load(), m.failed.Load()
		finished := uint64(sum.Skipped) + done + failed
		pct := 100 * float64(finished) / float64(max(len(units), 1))
		eta := "?"
		if done > 0 && !final {
			remaining := uint64(len(units)) - finished
			eta = (time.Duration(float64(time.Since(start)) / float64(done) * float64(remaining))).Round(time.Second).String()
		}
		if final {
			eta = "done"
		}
		fmt.Fprintf(opts.Progress, "rfpsweep: %d/%d units (%.0f%%), %d skipped, %d failed, %d retries, elapsed %s, eta %s\n",
			finished, len(units), pct, sum.Skipped, failed, m.retried.Load(), time.Since(start).Round(time.Second), eta)
	}
	stopProgress := make(chan struct{})
	var progressWG sync.WaitGroup
	if opts.Progress != nil {
		progressWG.Add(1)
		go func() {
			defer progressWG.Done()
			t := time.NewTicker(opts.progressEvery())
			defer t.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-t.C:
					progress(false)
				}
			}
		}()
	}

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		sem     = make(chan struct{}, opts.parallel())
		loopErr error
	)
	for _, u := range pending {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(u Unit) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return
			}
			defer func() { <-sem }()
			// Each unit gets its own run ID and timings collector. The
			// local backend's runner fills the collector through the
			// context; the HTTP backend forwards the ID to the daemon
			// (whose logs then correlate with ours) and merges the
			// daemon's timings header back into the collector.
			uctx, tim := obs.WithTimings(obs.WithRunID(ctx, obs.NewRunID()))
			ulog := obs.Logger(uctx).With("unit", u.Label, "key", u.Key[:12])
			ulog.Debug("unit start", "backend", backend.Name())
			resp, err := backend.Run(uctx, u)
			if err != nil {
				if ctx.Err() != nil {
					return // cancelled, not failed: the unit stays pending
				}
				ulog.Warn("unit failed", "err", err.Error())
				m.failed.Add(1)
				mu.Lock()
				sum.Failed = append(sum.Failed, UnitError{Unit: u, Err: err})
				mu.Unlock()
				return
			}
			ulog.Debug("unit done", "ipc", resp.IPC, "timings", tim.String())
			mu.Lock()
			sum.Results[u.Key] = resp
			sum.Timings[u.Key] = tim
			var jerr error
			if journal != nil {
				jerr = journal.Record(u, resp)
			}
			if jerr != nil && loopErr == nil {
				loopErr = jerr
			}
			mu.Unlock()
			m.done.Add(1)
		}(u)
	}
	wg.Wait()
	close(stopProgress)
	progressWG.Wait()
	if opts.Progress != nil {
		progress(true)
	}

	if loopErr != nil {
		return sum, loopErr
	}
	if err := ctx.Err(); err != nil {
		return sum, err
	}
	if n := len(sum.Failed); n > 0 {
		return sum, fmt.Errorf("sweep: %d of %d units failed; first: %s: %w",
			n, len(units), sum.Failed[0].Unit.Label, sum.Failed[0].Err)
	}
	return sum, nil
}

// WriteCSV renders completed units in deterministic grid order using the
// schema cmd/experiments emits (experiment,metric,value): per unit an
// ipc, a cycles and an instructions row. Two complete runs of the same
// grid — whatever backend executed them, in whatever order, across
// however many crash/resume cycles — produce byte-identical files.
func (s *Summary) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(experiments.MetricsCSVHeader); err != nil {
		return err
	}
	for _, u := range s.Units {
		resp, ok := s.Results[u.Key]
		if !ok {
			continue
		}
		rows := [][]string{
			{u.Label, "ipc", experiments.FormatMetric(resp.IPC)},
			{u.Label, "cycles", experiments.FormatCount(resp.Cycles)},
			{u.Label, "instructions", experiments.FormatCount(resp.Instructions)},
		}
		for _, row := range rows {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTimingsCSV renders the per-stage wall-clock breakdown of every
// unit this run executed, as experiment,stage,seconds rows in grid order
// with stages in pipeline order. Unlike WriteCSV this output is NOT
// deterministic — it measures this run's wall time — which is exactly why
// it lives in a separate file (rfpsweep -timings) instead of the pinned
// aggregate CSV.
func (s *Summary) WriteTimingsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "stage", "seconds"}); err != nil {
		return err
	}
	for _, u := range s.Units {
		tim, ok := s.Timings[u.Key]
		if !ok {
			continue // checkpoint-replayed or failed: no cost paid this run
		}
		for _, stage := range obs.Stages() {
			row := []string{u.Label, stage,
				strconv.FormatFloat(tim.Stage(stage).Seconds(), 'f', 6, 64)}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
