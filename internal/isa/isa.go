// Package isa defines the micro-operation (uop) abstraction that the whole
// simulator operates on.
//
// The paper evaluates RFP on an x86 core; RFP itself is ISA-agnostic — it
// keys on load program counters, virtual addresses and register
// dependencies. We therefore model a generic RISC-like micro-op stream: each
// dynamic instruction is a single uop with up to two register sources, one
// register destination, and (for memory ops) one virtual address. x86
// load-op instructions are represented as a load uop followed by an ALU uop,
// which is exactly what the decoded uop stream of a modern x86 core looks
// like.
package isa

import "fmt"

// RegID names an architectural register. The machine has 32 integer and 32
// floating-point architectural registers; renaming maps them onto a much
// larger physical register file.
type RegID uint8

const (
	// NumIntRegs is the number of architectural integer registers.
	NumIntRegs = 32
	// NumFPRegs is the number of architectural floating-point registers.
	NumFPRegs = 32
	// NumArchRegs is the total architectural register count.
	NumArchRegs = NumIntRegs + NumFPRegs
	// NoReg marks an absent register operand.
	NoReg RegID = 0xFF
)

// FirstFPReg is the architectural index of the first FP register.
const FirstFPReg RegID = NumIntRegs

// IsFP reports whether r names a floating-point architectural register.
func (r RegID) IsFP() bool { return r != NoReg && r >= FirstFPReg }

// Valid reports whether r names a real register (not NoReg).
func (r RegID) Valid() bool { return r != NoReg && r < NumArchRegs }

// String implements fmt.Stringer.
func (r RegID) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", r-FirstFPReg)
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// OpClass categorizes a micro-op by the execution resource and latency it
// needs.
type OpClass uint8

const (
	// OpNop does nothing; it still occupies frontend/ROB slots.
	OpNop OpClass = iota
	// OpALU is a single-cycle integer operation.
	OpALU
	// OpMul is a pipelined 3-cycle integer multiply.
	OpMul
	// OpDiv is a long-latency (18-cycle) integer divide.
	OpDiv
	// OpFP is a pipelined 4-cycle floating-point add/multiply (also used
	// for vector ops).
	OpFP
	// OpFMA is a pipelined 5-cycle fused multiply-add.
	OpFMA
	// OpLoad reads memory into a register.
	OpLoad
	// OpStore writes a register to memory.
	OpStore
	// OpBranch is a conditional or unconditional control transfer.
	OpBranch
	numOpClasses
)

// NumOpClasses is the number of distinct op classes.
const NumOpClasses = int(numOpClasses)

var opClassNames = [...]string{
	OpNop:    "nop",
	OpALU:    "alu",
	OpMul:    "mul",
	OpDiv:    "div",
	OpFP:     "fp",
	OpFMA:    "fma",
	OpLoad:   "load",
	OpStore:  "store",
	OpBranch: "branch",
}

// String implements fmt.Stringer.
func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return fmt.Sprintf("opclass(%d)", uint8(c))
}

// IsMem reports whether the class accesses memory.
func (c OpClass) IsMem() bool { return c == OpLoad || c == OpStore }

// ExecLatency returns the execution latency, in cycles, of the op class on
// its execution unit. Load latency is not included here: it is determined by
// the memory hierarchy (5 cycles for an L1 hit on the baseline core).
func (c OpClass) ExecLatency() int {
	switch c {
	case OpALU, OpBranch, OpStore, OpNop, OpLoad:
		return 1
	case OpMul:
		return 3
	case OpDiv:
		return 18
	case OpFP:
		return 4
	case OpFMA:
		return 5
	default:
		return 1
	}
}

// MicroOp is one dynamic micro-operation of the workload trace.
//
// The generator fills in the architectural view (PC, registers, address,
// value, branch outcome); the core fills in the microarchitectural state
// during simulation.
type MicroOp struct {
	// Seq is the dynamic sequence number, unique and monotonically
	// increasing over a run.
	Seq uint64
	// PC is the static program counter of the instruction. RFP's Prefetch
	// Table, the value predictors and the branch predictor all index on
	// it.
	PC uint64
	// Class selects the execution resource and latency.
	Class OpClass
	// Src1 and Src2 are the architectural source registers (NoReg if
	// absent). For stores, Src1 is the address base and Src2 the data.
	Src1, Src2 RegID
	// Dst is the architectural destination register (NoReg for stores,
	// branches and nops).
	Dst RegID
	// Addr is the virtual byte address touched by a load or store.
	Addr uint64
	// Size is the access size in bytes for memory ops.
	Size uint8
	// Value is the data value loaded or stored; value predictors are
	// trained against and validated on it.
	Value uint64
	// Taken is the branch outcome.
	Taken bool
	// Target is the branch target when taken.
	Target uint64
}

// IsLoad reports whether the uop is a load.
func (u *MicroOp) IsLoad() bool { return u.Class == OpLoad }

// IsStore reports whether the uop is a store.
func (u *MicroOp) IsStore() bool { return u.Class == OpStore }

// IsBranch reports whether the uop is a branch.
func (u *MicroOp) IsBranch() bool { return u.Class == OpBranch }

// String implements fmt.Stringer; it is meant for debug logs.
func (u *MicroOp) String() string {
	switch u.Class {
	case OpLoad:
		return fmt.Sprintf("#%d pc=%#x load %s <- [%#x]", u.Seq, u.PC, u.Dst, u.Addr)
	case OpStore:
		return fmt.Sprintf("#%d pc=%#x store [%#x] <- %s", u.Seq, u.PC, u.Addr, u.Src2)
	case OpBranch:
		return fmt.Sprintf("#%d pc=%#x branch taken=%v -> %#x", u.Seq, u.PC, u.Taken, u.Target)
	default:
		return fmt.Sprintf("#%d pc=%#x %s %s <- %s,%s", u.Seq, u.PC, u.Class, u.Dst, u.Src1, u.Src2)
	}
}

// Generator produces a dynamic micro-op stream. Implementations must be
// deterministic for a given construction seed.
type Generator interface {
	// Next fills op with the next dynamic uop and reports whether one was
	// produced. Generators used in this repository are infinite; Next
	// returning false means the workload genuinely ended.
	Next(op *MicroOp) bool
	// Name identifies the workload.
	Name() string
}

// PageSize is the virtual memory page size assumed throughout (4 KiB).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageFrame returns the page frame number (address bits 63:12) of addr.
func PageFrame(addr uint64) uint64 { return addr >> PageShift }

// PageOffset returns the within-page offset (bits 11:0) of addr.
func PageOffset(addr uint64) uint64 { return addr & (PageSize - 1) }

// CacheLineSize is the cache line size in bytes (64, as on all modern x86).
const CacheLineSize = 64

// LineAddr returns the cache-line-aligned address of addr.
func LineAddr(addr uint64) uint64 { return addr &^ uint64(CacheLineSize-1) }
