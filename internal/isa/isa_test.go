package isa

import (
	"testing"
	"testing/quick"
)

func TestRegIDClassification(t *testing.T) {
	if NoReg.Valid() {
		t.Error("NoReg must not be valid")
	}
	if NoReg.IsFP() {
		t.Error("NoReg must not be FP")
	}
	for r := RegID(0); r < NumIntRegs; r++ {
		if !r.Valid() {
			t.Errorf("int reg %d should be valid", r)
		}
		if r.IsFP() {
			t.Errorf("reg %d misclassified as FP", r)
		}
	}
	for r := FirstFPReg; r < NumArchRegs; r++ {
		if !r.Valid() {
			t.Errorf("fp reg %d should be valid", r)
		}
		if !r.IsFP() {
			t.Errorf("reg %d should be FP", r)
		}
	}
	if RegID(NumArchRegs).Valid() {
		t.Error("out-of-range reg must not be valid")
	}
}

func TestRegIDString(t *testing.T) {
	cases := map[RegID]string{
		0:              "r0",
		5:              "r5",
		FirstFPReg:     "f0",
		FirstFPReg + 3: "f3",
		NoReg:          "-",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("RegID(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestOpClassLatencies(t *testing.T) {
	if OpALU.ExecLatency() != 1 {
		t.Errorf("ALU latency = %d, want 1", OpALU.ExecLatency())
	}
	if OpMul.ExecLatency() != 3 {
		t.Errorf("MUL latency = %d, want 3", OpMul.ExecLatency())
	}
	if OpFMA.ExecLatency() <= OpFP.ExecLatency() {
		t.Error("FMA should be slower than FP add/mul")
	}
	if OpDiv.ExecLatency() <= OpMul.ExecLatency() {
		t.Error("DIV should be slower than MUL")
	}
	for c := OpNop; c < OpClass(NumOpClasses); c++ {
		if c.ExecLatency() < 1 {
			t.Errorf("%v latency < 1", c)
		}
	}
}

func TestOpClassPredicates(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() {
		t.Error("load/store must be memory classes")
	}
	if OpALU.IsMem() || OpBranch.IsMem() {
		t.Error("alu/branch must not be memory classes")
	}
	u := MicroOp{Class: OpLoad}
	if !u.IsLoad() || u.IsStore() || u.IsBranch() {
		t.Error("load uop predicates wrong")
	}
	u.Class = OpStore
	if u.IsLoad() || !u.IsStore() {
		t.Error("store uop predicates wrong")
	}
	u.Class = OpBranch
	if !u.IsBranch() {
		t.Error("branch uop predicate wrong")
	}
}

func TestOpClassString(t *testing.T) {
	if OpLoad.String() != "load" {
		t.Errorf("OpLoad.String() = %q", OpLoad.String())
	}
	if OpClass(200).String() == "" {
		t.Error("unknown class should still stringify")
	}
}

func TestPageHelpers(t *testing.T) {
	addr := uint64(0x12345_678)
	if PageFrame(addr) != addr>>12 {
		t.Error("PageFrame mismatch")
	}
	if PageOffset(addr) != addr&0xFFF {
		t.Error("PageOffset mismatch")
	}
	if LineAddr(0x1047) != 0x1040 {
		t.Errorf("LineAddr(0x1047) = %#x", LineAddr(0x1047))
	}
}

// Property: any address decomposes into frame+offset losslessly, and the
// line address is aligned and within the same page iff offset < PageSize.
func TestPageDecompositionProperty(t *testing.T) {
	f := func(addr uint64) bool {
		recomposed := PageFrame(addr)<<PageShift | PageOffset(addr)
		if recomposed != addr {
			return false
		}
		la := LineAddr(addr)
		return la%CacheLineSize == 0 && la <= addr && addr-la < CacheLineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMicroOpString(t *testing.T) {
	u := MicroOp{Seq: 1, PC: 0x40, Class: OpLoad, Dst: 3, Addr: 0x1000}
	if s := u.String(); s == "" {
		t.Error("empty String for load")
	}
	u.Class = OpStore
	u.Src2 = 4
	if s := u.String(); s == "" {
		t.Error("empty String for store")
	}
	u.Class = OpBranch
	if s := u.String(); s == "" {
		t.Error("empty String for branch")
	}
	u.Class = OpALU
	if s := u.String(); s == "" {
		t.Error("empty String for alu")
	}
}

// Generator conformance: every catalogued construct that claims to be a
// generator must satisfy the interface (compile-time checks live in their
// packages; this guards the interface itself from accidental changes).
func TestGeneratorInterfaceShape(t *testing.T) {
	var g Generator
	if g != nil {
		t.Fatal("zero interface must be nil")
	}
	// A minimal inline implementation must satisfy it.
	g = genFunc{}
	var op MicroOp
	if !g.Next(&op) || g.Name() != "inline" {
		t.Fatal("inline generator misbehaved")
	}
}

type genFunc struct{}

func (genFunc) Next(op *MicroOp) bool {
	*op = MicroOp{Class: OpNop, Dst: NoReg, Src1: NoReg, Src2: NoReg}
	return true
}
func (genFunc) Name() string { return "inline" }
