// Command rfpsimd is the long-running simulation daemon: it accepts
// simulation jobs over HTTP, runs them on a bounded worker pool with
// backpressure, caches results by content address, and exposes
// Prometheus-style metrics. Every request gets a run ID (echoed in the
// X-Rfpsimd-Run-Id response header) that correlates the response with all
// structured log lines the job produced; -pprof mounts the net/http/pprof
// endpoints and -profile-dir captures a per-job CPU profile. See
// docs/service.md for the API and docs/observability.md for the metrics,
// log fields and profiling endpoints.
//
// Usage:
//
//	rfpsimd [-addr :8080] [-workers N] [-queue N] [-tenant-queue N]
//	        [-cache N] [-cache-bytes N] [-cache-dir DIR] [-cache-max-bytes N]
//	        [-self URL] [-peers URL,URL,...] [-peer-timeout 2s]
//	        [-timeout 5m] [-maxuops N] [-drain 30s] [-http-timeout 2m]
//	        [-log-format text|json] [-log-level info] [-pprof]
//	        [-profile-dir DIR]
//
// -cache-dir enables the persistent disk result cache (survives
// restarts); -peers/-self enable peer cache fill over a consistent-hash
// ring. See docs/fabric.md.
//
// The daemon also serves an embedded browser console at /console/ —
// submit jobs, upload traces, watch queue and cache state live, render
// pipeline-trace diagrams. See docs/console.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfpsim/internal/console"
	"rfpsim/internal/fabric"
	"rfpsim/internal/obs"
	"rfpsim/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = NumCPU)")
		queue      = flag.Int("queue", 0, "queued-job bound before 429s (0 = 4x workers)")
		cache      = flag.Int("cache", 0, "result cache entries (0 = 4096)")
		timeout    = flag.Duration("timeout", 10*time.Minute, "default per-job timeout (0 = none)")
		maxUops    = flag.Uint64("maxuops", 0, "per-job uop ceiling, (warmup+measure)*seeds (0 = 50M)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline on SIGTERM/SIGINT")
		httpTO     = flag.Duration("http-timeout", 2*time.Minute, "read/idle timeout per HTTP connection (slowloris guard)")
		logFormat  = flag.String("log-format", "text", "structured log format: text or json")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes internals; keep off on untrusted networks)")
		profileDir = flag.String("profile-dir", "", "capture a CPU profile per executed job into DIR/job-<runid>.pprof")

		cacheBytes  = flag.Int64("cache-bytes", 0, "in-memory result cache byte cap (0 = 256 MiB)")
		tenantQueue = flag.Int("tenant-queue", 0, "per-tenant queued-job bound before 429s (0 = -queue)")
		cacheDir    = flag.String("cache-dir", "", "persistent disk result cache directory (empty = disabled)")
		cacheMaxB   = flag.Int64("cache-max-bytes", 0, "disk cache size cap before LRU eviction (0 = 1 GiB)")
		self        = flag.String("self", "", "this daemon's base URL as peers reach it (required with -peers)")
		peersFlag   = flag.String("peers", "", "comma-separated peer base URLs forming the result fabric ring")
		peerTimeout = flag.Duration("peer-timeout", 0, "per-request deadline for peer cache fills (0 = 2s)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfpsimd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	if *profileDir != "" {
		if err := os.MkdirAll(*profileDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rfpsimd: -profile-dir: %v\n", err)
			os.Exit(2)
		}
	}

	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	if len(peers) > 0 && *self == "" {
		fmt.Fprintln(os.Stderr, "rfpsimd: -peers requires -self (this daemon's own base URL)")
		os.Exit(2)
	}

	svc, err := service.New(service.Options{
		Workers:          *workers,
		QueueDepth:       *queue,
		TenantQueueDepth: *tenantQueue,
		CacheEntries:     *cache,
		CacheBytes:       *cacheBytes,
		MaxJobUops:       *maxUops,
		DefaultTimeout:   *timeout,
		Logger:           logger,
		CPUProfileDir:    *profileDir,
		Fabric: fabric.Options{
			Dir:         *cacheDir,
			MaxBytes:    *cacheMaxB,
			Self:        *self,
			Peers:       peers,
			PeerTimeout: *peerTimeout,
			Logger:      logger,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfpsimd: %v\n", err)
		os.Exit(2)
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	console.Mount(mux, svc, console.Options{Logger: logger})
	if *pprofOn {
		obs.RegisterPprof(mux)
	}

	// A slow or stalled client must not hold a connection (and its
	// handler goroutine) forever: bound header parsing tightly and body
	// reads/idle keep-alives by -http-timeout. WriteTimeout is deliberately
	// left unset — it would start ticking while a legitimate multi-minute
	// simulation is still running; the per-job -timeout bounds that side.
	headerTO := 15 * time.Second
	if *httpTO > 0 && *httpTO < headerTO {
		headerTO = *httpTO
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: headerTO,
		ReadTimeout:       *httpTO,
		IdleTimeout:       *httpTO,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("rfpsimd listening", "addr", *addr, "pprof", *pprofOn)

	select {
	case err := <-errc:
		logger.Error("rfpsimd serve failed", "err", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, let in-flight handlers
	// (and the jobs they wait on) finish within the deadline, then stop
	// the worker pool.
	logger.Info("rfpsimd draining", "deadline", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("rfpsimd shutdown", "err", err.Error())
	}
	svc.Close()
	logger.Info("rfpsimd drained")
}
