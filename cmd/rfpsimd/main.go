// Command rfpsimd is the long-running simulation daemon: it accepts
// simulation jobs over HTTP, runs them on a bounded worker pool with
// backpressure, caches results by content address, and exposes
// Prometheus-style metrics. See docs/service.md for the API and a curl
// quickstart.
//
// Usage:
//
//	rfpsimd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	        [-timeout 5m] [-maxuops N] [-drain 30s] [-http-timeout 2m]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rfpsim/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent simulations (0 = NumCPU)")
		queue   = flag.Int("queue", 0, "queued-job bound before 429s (0 = 4x workers)")
		cache   = flag.Int("cache", 0, "result cache entries (0 = 4096)")
		timeout = flag.Duration("timeout", 10*time.Minute, "default per-job timeout (0 = none)")
		maxUops = flag.Uint64("maxuops", 0, "per-job uop ceiling, (warmup+measure)*seeds (0 = 50M)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline on SIGTERM/SIGINT")
		httpTO  = flag.Duration("http-timeout", 2*time.Minute, "read/idle timeout per HTTP connection (slowloris guard)")
	)
	flag.Parse()

	svc := service.New(service.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		MaxJobUops:     *maxUops,
		DefaultTimeout: *timeout,
	})
	// A slow or stalled client must not hold a connection (and its
	// handler goroutine) forever: bound header parsing tightly and body
	// reads/idle keep-alives by -http-timeout. WriteTimeout is deliberately
	// left unset — it would start ticking while a legitimate multi-minute
	// simulation is still running; the per-job -timeout bounds that side.
	headerTO := 15 * time.Second
	if *httpTO > 0 && *httpTO < headerTO {
		headerTO = *httpTO
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: headerTO,
		ReadTimeout:       *httpTO,
		IdleTimeout:       *httpTO,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("rfpsimd listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("rfpsimd: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, let in-flight handlers
	// (and the jobs they wait on) finish within the deadline, then stop
	// the worker pool.
	log.Printf("rfpsimd: draining (deadline %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rfpsimd: shutdown: %v\n", err)
	}
	svc.Close()
	log.Printf("rfpsimd: drained")
}
