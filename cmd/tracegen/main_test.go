package main

import (
	"os"
	"path/filepath"
	"testing"

	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

func TestDumpAndInfoRoundTrip(t *testing.T) {
	spec, ok := trace.ByName("spec06_hmmer")
	if !ok {
		t.Fatal("workload missing")
	}
	path := filepath.Join(t.TempDir(), "hmmer.rfpt")
	if err := dump(spec, 5000, path); err != nil {
		t.Fatalf("dump: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 1000 {
		t.Errorf("trace suspiciously small: %d bytes", st.Size())
	}
	if err := printInfo(path); err != nil {
		t.Fatalf("printInfo: %v", err)
	}

	// The dumped trace must replay identically to the generator.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := tracefile.NewReader(f, "check")
	if err != nil {
		t.Fatal(err)
	}
	gen := spec.New()
	var want, got isa.MicroOp
	for i := 0; i < 5000; i++ {
		gen.Next(&want)
		if !r.Next(&got) {
			t.Fatalf("trace ended at %d: %v", i, r.Err())
		}
		if got != want {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestDumpToUnwritablePathFails(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	if err := dump(spec, 10, "/nonexistent-dir/x.rfpt"); err == nil {
		t.Error("dump to an unwritable path succeeded")
	}
}

func TestInfoOnGarbageFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a trace at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := printInfo(path); err == nil {
		t.Error("printInfo accepted garbage")
	}
	if err := printInfo(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("printInfo accepted a missing file")
	}
}
