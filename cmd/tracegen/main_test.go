package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestDumpAndInfoRoundTrip(t *testing.T) {
	spec, ok := trace.ByName("spec06_hmmer")
	if !ok {
		t.Fatal("workload missing")
	}
	path := filepath.Join(t.TempDir(), "hmmer.rfpt")
	if err := dump(spec, 5000, path); err != nil {
		t.Fatalf("dump: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 1000 {
		t.Errorf("trace suspiciously small: %d bytes", st.Size())
	}
	if err := printInfo(path, io.Discard); err != nil {
		t.Fatalf("printInfo: %v", err)
	}

	// The dumped trace must replay identically to the generator.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := tracefile.NewReader(f, "check")
	if err != nil {
		t.Fatal(err)
	}
	gen := spec.New()
	var want, got isa.MicroOp
	for i := 0; i < 5000; i++ {
		gen.Next(&want)
		if !r.Next(&got) {
			t.Fatalf("trace ended at %d: %v", i, r.Err())
		}
		if got != want {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestDumpToUnwritablePathFails(t *testing.T) {
	spec, _ := trace.ByName("spec06_hmmer")
	if err := dump(spec, 10, "/nonexistent-dir/x.rfpt"); err == nil {
		t.Error("dump to an unwritable path succeeded")
	}
}

func TestInfoOnGarbageFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a trace at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := printInfo(path, io.Discard); err == nil {
		t.Error("printInfo accepted garbage")
	}
	if err := printInfo(filepath.Join(t.TempDir(), "missing"), io.Discard); err == nil {
		t.Error("printInfo accepted a missing file")
	}
}

const champsimFixture = "../../internal/champsim/testdata/tiny.champsim.gz"

// TestConvertInfoGolden converts the committed ChampSim fixture and pins
// the conversion report plus tracegen -info's view of the result — uop
// count, class mix and the content address rfpsimd would file the trace
// under. Any drift in the ChampSim cracking, the rfpt encoding or the
// fixture itself lands here.
func TestConvertInfoGolden(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tiny.rfpt")
	var conv bytes.Buffer
	if err := convertChampSim(champsimFixture, out, 1<<40, &conv); err != nil {
		t.Fatalf("convert: %v", err)
	}
	var info bytes.Buffer
	if err := printInfo(out, &info); err != nil {
		t.Fatalf("info: %v", err)
	}
	// The first -info line echoes the (temp) path; rewrite it to a stable
	// name so the golden is location-independent.
	got := conv.String() + strings.Replace(info.String(), out, "tiny.rfpt", 1)

	golden := filepath.Join("testdata", "info.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("conversion report drifted from %s (regenerate with -update):\n got:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestConvertCapStopsEarly checks -n caps a conversion: a 1-uop budget
// converts only the leading instruction(s), not the whole fixture.
func TestConvertCapStopsEarly(t *testing.T) {
	out := filepath.Join(t.TempDir(), "capped.rfpt")
	var report bytes.Buffer
	if err := convertChampSim(champsimFixture, out, 1, &report); err != nil {
		t.Fatalf("convert: %v", err)
	}
	if !strings.Contains(report.String(), "converted 1 ChampSim instructions into 1 uops") {
		t.Errorf("unexpected capped-conversion report: %s", report.String())
	}
}
