// Command tracegen materializes a synthetic workload into the binary trace
// format (internal/tracefile), converts an external ChampSim instruction
// trace into it, or inspects an existing trace. Traces let the simulator
// run on externally captured micro-op streams — and let other tools
// consume this repository's workload suite. The ChampSim→rfpt mapping and
// its documented lossiness live in internal/champsim (docs/traces.md).
//
// Usage:
//
//	tracegen -workload spec06_mcf -n 1000000 -o mcf.rfpt
//	tracegen -from-champsim 605.mcf.champsim.xz -o mcf.rfpt
//	tracegen -info mcf.rfpt
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"

	"rfpsim/internal/champsim"
	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload name to materialize")
		fromCS   = flag.String("from-champsim", "", "ChampSim trace to convert (raw, .gz or .xz)")
		n        = flag.Uint64("n", 1000000, "number of uops to emit (cap for conversions)")
		out      = flag.String("o", "", "output trace path")
		info     = flag.String("info", "", "print statistics of an existing trace and exit")
	)
	flag.Parse()

	switch {
	case *info != "":
		if err := printInfo(*info, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *fromCS != "":
		if *out == "" {
			fmt.Fprintln(os.Stderr, "need -o with -from-champsim")
			os.Exit(2)
		}
		if err := convertChampSim(*fromCS, *out, *n, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *workload != "" && *out != "":
		spec, ok := trace.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
		if err := dump(spec, *n, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -workload and -o, -from-champsim and -o, or -info <file>")
		os.Exit(2)
	}
}

func dump(spec trace.Spec, n uint64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := tracefile.NewWriter(f)
	gen := spec.New()
	var op isa.MicroOp
	for i := uint64(0); i < n; i++ {
		if !gen.Next(&op) {
			break
		}
		if err := w.Write(&op); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d uops of %s to %s (%.1f MiB, %.1f bytes/uop)\n",
		w.Count(), spec.Name, path,
		float64(st.Size())/(1<<20), float64(st.Size())/float64(w.Count()))
	return f.Close()
}

// convertChampSim cracks a ChampSim instruction trace into micro-ops and
// writes them as .rfpt, capping the output at n uops (an instruction's
// uops are never split across the cap).
func convertChampSim(src, dst string, n uint64, stdout io.Writer) error {
	in, err := champsim.OpenFile(src)
	if err != nil {
		return err
	}
	defer in.Close()
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer f.Close()
	w := tracefile.NewWriter(f)
	conv := champsim.NewConverter(champsim.NewDecoder(in), src)
	var op isa.MicroOp
	for conv.Uops() < n && conv.Next(&op) {
		if err := w.Write(&op); err != nil {
			return fmt.Errorf("writing %s: %w", dst, err)
		}
	}
	if err := conv.Err(); err != nil {
		return fmt.Errorf("reading %s: %w", src, err)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "converted %d ChampSim instructions into %d uops (%.2f uops/instr)\n",
		conv.Records(), w.Count(), float64(w.Count())/float64(conv.Records()))
	return f.Close()
}

// printInfo writes a trace's shape — uop count, static load PCs, class
// mix and the content address rfpsimd would store it under — to w. The
// output is golden-pinned (cmd/tracegen tests), so converted fixtures
// stay byte-stable.
func printInfo(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	r, err := tracefile.NewReader(io.TeeReader(f, h), path)
	if err != nil {
		return err
	}
	var counts [isa.NumOpClasses]uint64
	var total uint64
	var op isa.MicroOp
	pcs := map[uint64]struct{}{}
	for r.Next(&op) {
		counts[op.Class]++
		total++
		if op.IsLoad() {
			pcs[op.PC] = struct{}{}
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: %d uops, %d static load PCs\n", path, total, len(pcs))
	for c := isa.OpClass(0); int(c) < isa.NumOpClasses; c++ {
		if counts[c] > 0 {
			fmt.Fprintf(w, "  %-7s %9d (%.1f%%)\n", c, counts[c], 100*float64(counts[c])/float64(total))
		}
	}
	fmt.Fprintf(w, "  trace address %x\n", h.Sum(nil))
	return nil
}
