// Command tracegen materializes a synthetic workload into the binary trace
// format (internal/tracefile), or inspects an existing trace. Traces let
// the simulator run on externally captured micro-op streams — and let other
// tools consume this repository's workload suite.
//
// Usage:
//
//	tracegen -workload spec06_mcf -n 1000000 -o mcf.rfpt
//	tracegen -info mcf.rfpt
package main

import (
	"flag"
	"fmt"
	"os"

	"rfpsim/internal/isa"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

func main() {
	var (
		workload = flag.String("workload", "", "workload name to materialize")
		n        = flag.Uint64("n", 1000000, "number of uops to emit")
		out      = flag.String("o", "", "output trace path")
		info     = flag.String("info", "", "print statistics of an existing trace and exit")
	)
	flag.Parse()

	if *info != "" {
		if err := printInfo(*info); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *workload == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "need -workload and -o (or -info <file>)")
		os.Exit(2)
	}
	spec, ok := trace.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if err := dump(spec, *n, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func dump(spec trace.Spec, n uint64, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := tracefile.NewWriter(f)
	gen := spec.New()
	var op isa.MicroOp
	for i := uint64(0); i < n; i++ {
		if !gen.Next(&op) {
			break
		}
		if err := w.Write(&op); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d uops of %s to %s (%.1f MiB, %.1f bytes/uop)\n",
		w.Count(), spec.Name, path,
		float64(st.Size())/(1<<20), float64(st.Size())/float64(w.Count()))
	return f.Close()
}

func printInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := tracefile.NewReader(f, path)
	if err != nil {
		return err
	}
	var counts [isa.NumOpClasses]uint64
	var total uint64
	var op isa.MicroOp
	pcs := map[uint64]struct{}{}
	for r.Next(&op) {
		counts[op.Class]++
		total++
		if op.IsLoad() {
			pcs[op.PC] = struct{}{}
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("%s: %d uops, %d static load PCs\n", path, total, len(pcs))
	for c := isa.OpClass(0); int(c) < isa.NumOpClasses; c++ {
		if counts[c] > 0 {
			fmt.Printf("  %-7s %9d (%.1f%%)\n", c, counts[c], 100*float64(counts[c])/float64(total))
		}
	}
	return nil
}
