// Command rfpsample profiles a workload's measured window and prints its
// SimPoint replay plan: the representative intervals sampled simulation
// would cycle-simulate, their cluster weights and the clustering-dispersion
// error bound (see docs/sampling.md).
//
// Usage:
//
//	rfpsample -workload spec06_mcf [-warmup N] [-measure N]
//	          [-interval N] [-maxk K] [-json]
//	rfpsample -workload spec06_mcf -verify [-tol 0.02] [-rfp]
//
// With -verify it runs the workload twice — full window and sampled — and
// compares the IPC estimates; an error above -tol exits nonzero. CI uses
// this as the sampled-vs-full smoke check. -v turns on debug logging and
// prints a per-stage wall-time breakdown of the verify runs on stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"syscall"

	"rfpsim/internal/config"
	"rfpsim/internal/obs"
	"rfpsim/internal/runner"
	"rfpsim/internal/sample"
	"rfpsim/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "", "catalog workload to profile")
		warmup   = flag.Uint64("warmup", 30000, "uops skipped before the measured window")
		measure  = flag.Uint64("measure", 60000, "measured window length in uops")
		interval = flag.Uint64("interval", 0, "interval length in uops (0 = default 2000)")
		maxK     = flag.Int("maxk", 0, "max representative intervals (0 = default 5)")
		asJSON   = flag.Bool("json", false, "print the plan as JSON instead of the table")
		verify   = flag.Bool("verify", false, "run full and sampled simulations and compare IPC")
		tol      = flag.Float64("tol", 0.02, "max relative IPC error -verify tolerates")
		useRFP   = flag.Bool("rfp", false, "verify with Register File Prefetching enabled")
		verbose  = flag.Bool("v", false, "debug logging plus per-stage wall-time breakdowns on stderr")
	)
	flag.Parse()
	if *verbose {
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})))
	}

	if *workload == "" {
		fmt.Fprintln(os.Stderr, "rfpsample: -workload is required (rfpsim -listworkloads lists the suite)")
		os.Exit(2)
	}
	spec, ok := trace.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "rfpsample: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *verify {
		os.Exit(runVerify(ctx, spec, *warmup, *measure, *interval, *maxK, *tol, *useRFP, *verbose))
	}

	sp := sample.Normalized(runner.Sampling{IntervalUops: *interval, MaxK: *maxK})
	profile, err := sample.ProfileSpec(ctx, spec, *warmup, *measure, sp.IntervalUops)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfpsample:", err)
		os.Exit(1)
	}
	plan, err := sample.BuildPlan(profile, sp.MaxK, spec.Seed^sample.PlanSeedSalt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfpsample:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fmt.Fprintln(os.Stderr, "rfpsample:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(plan)
}

// runVerify compares full-window and sampled IPC under the given windows
// and returns the process exit code.
func runVerify(ctx context.Context, spec trace.Spec, warmup, measure, interval uint64, maxK int, tol float64, useRFP, verbose bool) int {
	cfg := config.Baseline()
	if useRFP {
		cfg = cfg.WithRFP()
	}
	job := runner.Job{
		Config:      cfg,
		Spec:        spec,
		WarmupUops:  warmup,
		MeasureUops: measure,
		Seeds:       1,
	}
	fullCtx, sampledCtx := ctx, ctx
	var fullTim, sampledTim *obs.Timings
	if verbose {
		fullCtx, fullTim = obs.WithTimings(ctx)
		sampledCtx, sampledTim = obs.WithTimings(ctx)
	}
	full, err := runner.Run(fullCtx, job)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfpsample: full run:", err)
		return 1
	}
	sampled := job
	sampled.Sampling = &runner.Sampling{IntervalUops: interval, MaxK: maxK}
	res, err := sample.RunResult(sampledCtx, sampled)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfpsample: sampled run:", err)
		return 1
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "full run timings:    %s\n", fullTim.Pretty())
		fmt.Fprintf(os.Stderr, "sampled run timings: %s\n", sampledTim.Pretty())
	}
	relErr := res.Stats.IPC()/full.IPC() - 1
	fmt.Printf("%s (%s): full IPC %.4f, sampled IPC %.4f, error %+.2f%% "+
		"(%d of %d intervals simulated, %d of %d measured uops, bound %.3f)\n",
		spec.Name, cfg.Name, full.IPC(), res.Stats.IPC(), 100*relErr,
		len(res.Plan.Points), res.Plan.Intervals,
		res.Plan.MeasuredUops(), job.MeasureUops, res.Plan.ErrorBound)
	if math.Abs(relErr) > tol {
		fmt.Fprintf(os.Stderr, "rfpsample: sampled IPC error %+.2f%% exceeds tolerance ±%.2f%%\n",
			100*relErr, 100*tol)
		return 1
	}
	return 0
}
