// Command suitestats prints one diagnostic line per workload of the
// 65-entry suite — IPC, hit-level distribution and (with -rfp) the RFP
// funnel — sorted by the chosen column. It is the calibration tool used to
// keep the synthetic suite aligned with the paper's population-level facts
// (≈93% L1 hits, ≈43% RFP coverage, FSPEC insensitivity).
//
// A workload whose pipeline wedges (a model bug) no longer aborts the
// whole sweep: its error is recorded, the surviving rows still print, and
// the command exits non-zero at the end.
//
// Usage:
//
//	suitestats [-rfp] [-sort ipc|l1|coverage|gain] [-warmup N] [-measure N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"syscall"

	"rfpsim/internal/config"
	"rfpsim/internal/runner"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

type row struct {
	spec trace.Spec
	base *stats.Sim
	rfp  *stats.Sim
	err  error
}

func main() {
	var (
		withRFP = flag.Bool("rfp", false, "also run with RFP and report coverage/gain")
		sortBy  = flag.String("sort", "l1", "sort column: ipc, l1, coverage or gain")
		warmup  = flag.Uint64("warmup", 20000, "warmup uops")
		measure = flag.Uint64("measure", 40000, "measured uops")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	specs := trace.Catalog()
	rows := make([]row, len(specs))
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec trace.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Errors (a wedged pipeline, cancellation) are recorded in the
			// row instead of exiting: killing the process from a worker
			// goroutine would discard every in-flight sibling's work.
			r := row{spec: spec}
			r.base, r.err = run(ctx, config.Baseline(), spec, *warmup, *measure)
			if r.err == nil && *withRFP {
				r.rfp, r.err = run(ctx, config.Baseline().WithRFP(), spec, *warmup, *measure)
			}
			rows[i] = r
		}(i, spec)
	}
	wg.Wait()

	sort.Slice(rows, func(a, b int) bool {
		key := func(r row) float64 {
			if r.err != nil {
				return 0
			}
			switch *sortBy {
			case "ipc":
				return r.base.IPC()
			case "coverage":
				if r.rfp != nil {
					return r.rfp.RFPCoverage()
				}
				return 0
			case "gain":
				if r.rfp != nil {
					return stats.Speedup(r.base, r.rfp)
				}
				return 0
			default:
				return r.base.LoadLevelFrac(stats.LevelL1)
			}
		}
		return key(rows[a]) < key(rows[b])
	})

	var l1s, ipcs, covs, gains []float64
	nErr := 0
	for _, r := range rows {
		if r.err != nil {
			nErr++
			continue
		}
		fmt.Printf("%-22s IPC %5.2f  L1 %5.1f%%  L2 %4.1f%%  Mem %4.1f%%",
			r.spec.Name, r.base.IPC(),
			100*r.base.LoadLevelFrac(stats.LevelL1),
			100*r.base.LoadLevelFrac(stats.LevelL2),
			100*r.base.LoadLevelFrac(stats.LevelMem))
		l1s = append(l1s, r.base.LoadLevelFrac(stats.LevelL1))
		ipcs = append(ipcs, r.base.IPC())
		if r.rfp != nil {
			g := stats.Speedup(r.base, r.rfp)
			fmt.Printf("  cov %5.1f%%  gain %+5.1f%%", 100*r.rfp.RFPCoverage(), 100*g)
			covs = append(covs, r.rfp.RFPCoverage())
			gains = append(gains, g)
		}
		fmt.Println()
	}
	fmt.Printf("\nsuite means (%d/%d workloads): IPC %.2f, L1 %s",
		len(ipcs), len(rows), stats.Mean(ipcs), stats.Pct(stats.Mean(l1s)))
	if *withRFP {
		fmt.Printf(", coverage %s, geomean gain %s",
			stats.Pct(stats.Mean(covs)), stats.Pct(stats.GeoMeanSpeedup(gains)))
	}
	fmt.Println()

	if nErr > 0 {
		for _, r := range rows {
			if r.err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", r.spec.Name, r.err)
			}
		}
		fmt.Fprintf(os.Stderr, "%d of %d workloads failed\n", nErr, len(rows))
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg config.Core, spec trace.Spec, warmup, measure uint64) (*stats.Sim, error) {
	return runner.Run(ctx, runner.Job{
		Config:      cfg,
		Spec:        spec,
		WarmupUops:  warmup,
		MeasureUops: measure,
		Seeds:       1,
	})
}
