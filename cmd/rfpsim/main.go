// Command rfpsim simulates one workload on one core configuration and
// prints the full statistics block — the single-run research tool behind
// the experiment harness.
//
// Usage:
//
//	rfpsim -workload spec06_mcf [-rfp] [-clp] [-vp eves|dlvp|composite|epp]
//	       [-oracle l1|l2|llc|mem] [-prefetcher stream|spp|sisb|managed]
//	       [-2x] [-warmup N] [-measure N] [-seed S]
//	       [-sample] [-sample-interval N] [-sample-maxk K] [-sample-warmup N]
//	       [-checks] [-v] [-cpuprofile out.pprof]
//	rfpsim -workload all -diff norfp [-measure N] [-diff-interval N]
//	rfpsim -listworkloads
//
// -prefetcher enables an L1 hardware cache prefetcher from the zoo
// (docs/prefetchers.md): "stream" (sequential), "spp" (signature-path),
// "sisb" (temporal) or "managed" (adaptive selection among the three).
//
// -diff runs the differential correctness harness (docs/checking.md):
// the flag-built configuration is paired against a derived baseline
// (norfp, novp, nolatealloc, nopf, noclp, baseline, or full for
// sampled-vs-full) and the committed architectural traces are compared;
// any divergence is localized to its first divergent interval and uop
// and exits non-zero. -checks enables the runtime invariant layer on a
// normal run.
//
// -v turns on debug logging and prints a per-stage wall-time breakdown
// (fast-forward / warmup / measure / aggregate, plus profile under
// -sample) to stderr after the run; -cpuprofile captures a pprof CPU
// profile of the simulation. See docs/observability.md.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"rfpsim/internal/check"
	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/isa"
	"rfpsim/internal/obs"
	"rfpsim/internal/runner"
	"rfpsim/internal/sample"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

func main() {
	var (
		workload  = flag.String("workload", "spec06_mcf", "workload name from the Table 3 suite")
		traceFile = flag.String("trace", "", "run from a binary trace file instead of a synthetic workload")
		listWk    = flag.Bool("listworkloads", false, "list the 65-workload suite and exit")
		useRFP    = flag.Bool("rfp", false, "enable Register File Prefetching")
		usePAT    = flag.Bool("pat", false, "use the Page Address Table PT encoding")
		useCtx    = flag.Bool("context", false, "add the path-based context prefetcher")
		useCLP    = flag.Bool("clp", false, "cache-level-predicted RFP arming schedule (implies -rfp; docs/predictors.md)")
		vpMode    = flag.String("vp", "", "value prediction: eves, dlvp, composite or epp")
		oracle    = flag.String("oracle", "", "oracle prefetch study: l1, l2, llc or mem")
		upscaled  = flag.Bool("2x", false, "use the futuristic Baseline-2x core")
		warmup    = flag.Uint64("warmup", 30000, "warmup uops (cache/predictor training)")
		measure   = flag.Uint64("measure", 60000, "measured uops")
		noWarmC   = flag.Bool("coldcaches", false, "skip footprint-based cache warming")
		confBits  = flag.Int("confbits", 1, "RFP confidence counter width (1-4)")
		ptEntries = flag.Int("ptentries", 1024, "RFP Prefetch Table entries")
		pipeTrace = flag.Uint64("pipetrace", 0, "stream N cycles of pipeline events to stderr (after warmup)")
		profile   = flag.Bool("profile", false, "print per-PC load profile (top 15) after the run")

		lateAlloc = flag.Bool("latealloc", false, "late register allocation (§3.3 pipeline variation)")
		pfName    = flag.String("prefetcher", "", "L1 hardware prefetcher: stream, spp, sisb or managed (docs/prefetchers.md)")
		doChecks  = flag.Bool("checks", false, "enable the runtime invariant layer (docs/checking.md)")
		diffMode  = flag.String("diff", "", "differential harness: norfp, novp, nolatealloc, nopf, noclp, baseline or full")
		diffIntvl = flag.Uint64("diff-interval", 0, "divergence-localization interval in uops (0 = default 1000)")

		doSample  = flag.Bool("sample", false, "SimPoint-style sampled simulation (see docs/sampling.md)")
		sInterval = flag.Uint64("sample-interval", 0, "sampling interval length in uops (0 = default 2000)")
		sMaxK     = flag.Int("sample-maxk", 0, "max representative intervals (0 = default 5)")
		sWarmup   = flag.Uint64("sample-warmup", 0, "per-representative cycle warmup uops (0 = one interval)")

		verbose    = flag.Bool("v", false, "debug logging plus a per-stage wall-time breakdown on stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
	)
	flag.Parse()
	if *verbose {
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})))
	}

	if *listWk {
		for _, c := range trace.Categories() {
			for _, s := range trace.ByCategory(c) {
				fmt.Println(s)
			}
		}
		return
	}

	cfg := config.Baseline()
	if *upscaled {
		cfg = config.Baseline2x()
	}
	if *useRFP || *useCLP {
		cfg = cfg.WithRFP()
		cfg.RFP.UsePAT = *usePAT
		cfg.RFP.UseContext = *useCtx
		cfg.RFP.ConfidenceBits = *confBits
		cfg.RFP.PTEntries = *ptEntries
		if *useCLP {
			cfg.RFP.UseCLP = true
			cfg.Name += "+clp"
		}
	}
	switch *vpMode {
	case "":
	case "eves":
		cfg = cfg.WithVP(config.VPEVES)
	case "dlvp":
		cfg = cfg.WithVP(config.VPDLVP)
	case "composite":
		cfg = cfg.WithVP(config.VPComposite)
	case "epp":
		cfg = cfg.WithVP(config.VPEPP)
	default:
		fmt.Fprintf(os.Stderr, "unknown -vp mode %q\n", *vpMode)
		os.Exit(2)
	}
	switch *oracle {
	case "":
	case "l1":
		cfg = cfg.WithOracle(config.OracleL1ToRF)
	case "l2":
		cfg = cfg.WithOracle(config.OracleL2ToL1)
	case "llc":
		cfg = cfg.WithOracle(config.OracleLLCToL2)
	case "mem":
		cfg = cfg.WithOracle(config.OracleMemToLLC)
	default:
		fmt.Fprintf(os.Stderr, "unknown -oracle %q\n", *oracle)
		os.Exit(2)
	}
	if *lateAlloc {
		cfg.LateRegAlloc = true
		cfg.Name += "+latealloc"
	}
	if *pfName != "" {
		cfg = cfg.WithPrefetcher(*pfName)
	}
	cfg.Checks.Enabled = *doChecks
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancels the in-flight simulation promptly instead
	// of leaving it to run to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *diffMode != "" {
		var sp *runner.Sampling
		if *doSample {
			sp = &runner.Sampling{IntervalUops: *sInterval, MaxK: *sMaxK, WarmupUops: *sWarmup}
		}
		code := runDiff(ctx, cfg, *diffMode, *workload, *traceFile, *measure, *diffIntvl, sp)
		stop()
		os.Exit(code)
	}

	job := runner.Job{
		Config:      cfg,
		WarmupUops:  *warmup,
		MeasureUops: *measure,
		Seeds:       1,
		ColdCaches:  *noWarmC,
	}
	if *doSample {
		job.Sampling = &runner.Sampling{
			IntervalUops: *sInterval,
			MaxK:         *sMaxK,
			WarmupUops:   *sWarmup,
		}
	}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		r, err := tracefile.NewReader(f, *traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		job.Gen = r
		job.Spec = trace.Spec{Name: *traceFile, Category: "trace-file"}
	} else {
		spec, ok := trace.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (use -listworkloads)\n", *workload)
			os.Exit(2)
		}
		job.Spec = spec
	}

	// The observer hook fires between warmup and the measured run, which
	// is where pipeline tracing and profiling attach.
	var observed *core.Core
	job.AfterWarmup = func(c *core.Core) {
		observed = c
		if *pipeTrace > 0 {
			c.AttachPipeTrace(os.Stderr, c.Cycle(), c.Cycle()+*pipeTrace)
		}
		if *profile {
			c.EnableProfile()
		}
	}

	var tim *obs.Timings
	if *verbose {
		ctx, tim = obs.WithTimings(ctx)
	}
	run := func() (sample.Result, error) { return sample.RunResult(ctx, job) }
	var res sample.Result
	var runErr error
	if *cpuProfile != "" {
		_, runErr = obs.CaptureCPUProfile(*cpuProfile, func() error {
			var e error
			res, e = run()
			return e
		})
	} else {
		res, runErr = run()
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", runErr)
		os.Exit(1)
	}
	if tim != nil {
		fmt.Fprintf(os.Stderr, "stage timings: %s\n", tim.Pretty())
	}
	if res.Plan != nil {
		fmt.Print(res.Plan)
		fmt.Println()
	}
	printStats(cfg.Name, job.Spec, res.Stats)
	if *profile {
		fmt.Println("\nper-PC load profile (top 15):")
		fmt.Println(observed.Profile())
	}
}

// runDiff executes the differential harness (docs/checking.md) for one
// workload, a trace file, or — with -workload all — the whole catalog,
// and returns the process exit code: 0 when every pairing commits an
// identical architectural trace with zero invariant violations, 1 on
// any divergence or violation, 2 on usage errors.
func runDiff(ctx context.Context, variant config.Core, mode, workload, traceFile string, measure, interval uint64, sampling *runner.Sampling) int {
	base, sampledVsFull, err := check.BaseFor(mode, variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	d := check.Differential{
		Base: base, Variant: variant,
		Uops: measure, IntervalUops: interval,
	}
	switch {
	case sampledVsFull:
		sp := runner.Sampling{}
		if sampling != nil {
			sp = *sampling
		}
		d.VariantSampling = &sp
	case sampling != nil:
		fmt.Fprintln(os.Stderr, "-sample only pairs with -diff full (the sampled-vs-full comparison)")
		return 2
	}

	var specs []trace.Spec
	switch {
	case traceFile != "":
		// Both sides (and any retry) need a fresh generator over the
		// identical stream, so the file is read once and re-decoded per
		// side.
		data, err := os.ReadFile(traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if _, err := tracefile.NewReader(bytes.NewReader(data), traceFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		d.NewGen = func() isa.Generator {
			r, err := tracefile.NewReader(bytes.NewReader(data), traceFile)
			if err != nil { // validated above; cannot recur
				panic(err)
			}
			return r
		}
		specs = []trace.Spec{{Name: traceFile, Category: "trace-file"}}
	case workload == "all":
		specs = trace.Catalog()
	default:
		spec, ok := trace.ByName(workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (use -listworkloads)\n", workload)
			return 2
		}
		specs = []trace.Spec{spec}
	}

	exit := 0
	for _, spec := range specs {
		d.Spec = spec
		res, err := d.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "diff failed: %v\n", err)
			return 1
		}
		fmt.Println(res)
		if res.Diverged || res.BaseViolations != 0 || res.VariantViolations != 0 {
			exit = 1
		}
	}
	return exit
}

func printStats(cfgName string, spec trace.Spec, st *stats.Sim) {
	fmt.Printf("workload   %s\nconfig     %s\n", spec, cfgName)
	fmt.Printf("cycles     %d\nuops       %d\nIPC        %.3f\n", st.Cycles, st.Instructions, st.IPC())
	fmt.Printf("loads      %d (forwarded %d)\nstores     %d\nbranches   %d (mispredicted %d)\n",
		st.Loads, st.StoreForwarded, st.Stores, st.Branches, st.BranchMispredicts)
	fmt.Print("load hits  ")
	for l := 0; l < stats.NumLevels; l++ {
		fmt.Printf("%s %s  ", stats.LevelName(l), stats.Pct(st.LoadLevelFrac(l)))
	}
	fmt.Println()
	fmt.Printf("speculation  replays %d, hit-miss mispredicts %d, ordering violations %d, DTLB misses %d\n",
		st.Replays, st.HitMissMispredicts, st.MemOrderViolations, st.DTLBMisses)
	if st.RFP.Injected > 0 {
		fmt.Printf("RFP        injected %s, executed %s, useful %s (coverage), wrong %s, fully hidden %s\n",
			stats.Pct(st.RFPInjectedFrac()), stats.Pct(st.RFPExecutedFrac()),
			stats.Pct(st.RFPCoverage()), stats.Pct(st.RFPWrongFrac()),
			stats.Pct(float64(st.RFP.FullyHidden)/float64(st.Loads)))
	}
	if st.L1PF.Issued > 0 {
		fmt.Printf("L1PF       issued %d, useful %d (coverage %s, accuracy %s), late %d, unused %d, dropped %d\n",
			st.L1PF.Issued, st.L1PF.Useful, stats.Pct(st.L1PFCoverage()),
			stats.Pct(st.L1PFAccuracy()), st.L1PF.Late, st.L1PF.Unused, st.L1PF.Dropped)
		if st.L1PF.ManagerEpochs > 0 {
			fmt.Printf("L1PF mgr   epochs %d, switches %d, throttled %d\n",
				st.L1PF.ManagerEpochs, st.L1PF.ManagerSwitches, st.L1PF.ManagerThrottledEpochs)
		}
	}
	if st.CLP.PredictedTotal() > 0 {
		fmt.Printf("CLP        predicted %s of loads (accuracy %s), per level ",
			stats.Pct(st.CLPCoverage()), stats.Pct(st.CLPAccuracy()))
		for l := 0; l < stats.NumLevels; l++ {
			if st.CLP.Predicted[l] > 0 {
				fmt.Printf("%s %s  ", stats.LevelName(l), stats.Pct(st.CLPLevelAccuracy(l)))
			}
		}
		fmt.Println()
		fmt.Printf("CLP sched  skipped-dram %d, early-armed %d, crit-gated %d\n",
			st.CLP.SkippedDRAM, st.CLP.EarlyArmed, st.CLP.CritGated)
	}
	if st.VP.Predicted > 0 {
		fmt.Printf("VP         predicted %s of loads, mispredicted %d (flushes %d)\n",
			stats.Pct(st.VPCoverage()), st.VP.Mispredicted, st.VPFlushes)
	}
	if st.Checks.Total() > 0 {
		fmt.Printf("CHECKS     %d invariant violations:", st.Checks.Total())
		st.Checks.Each(func(name string, count uint64) {
			if count > 0 {
				fmt.Printf(" %s=%d", name, count)
			}
		})
		fmt.Println()
	}
}
