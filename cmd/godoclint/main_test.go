package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func lintSource(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return lintFile(fset, f)
}

func TestLintFlagsUndocumentedExports(t *testing.T) {
	src := `package p

func Exported() {}

type Exposed struct{}

const Answer = 42

var (
	Named   = 1
	private = 2
)
`
	got := lintSource(t, src)
	if len(got) != 4 {
		t.Fatalf("got %d findings, want 4: %v", len(got), got)
	}
	for i, want := range []string{"func Exported", "type Exposed", "value Answer", "value Named"} {
		if !strings.Contains(got[i], want) {
			t.Errorf("finding %d = %q, want it to mention %q", i, got[i], want)
		}
	}
}

func TestLintAcceptsDocumentedAndUnexported(t *testing.T) {
	src := `package p

// Exported does something.
func Exported() {}

func internal() {}

// Grouped constants share one comment.
const (
	A = 1
	B = 2
)

type T struct{} // T is inline-documented.
`
	if got := lintSource(t, src); len(got) != 0 {
		t.Fatalf("documented file produced findings: %v", got)
	}
}
