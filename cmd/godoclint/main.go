// Command godoclint enforces the repository's godoc contract: every
// exported declaration — function, method, type, constant, variable —
// must carry a doc comment. CI runs it in the docs job so an exported
// identifier cannot land (or lose its comment in a refactor) without
// documentation; see docs/README.md for the documentation map it backs.
//
// Usage:
//
//	godoclint [-root DIR]
//
// The tool walks every .go file under -root, skipping _test.go files
// (test helpers are internal to their package), testdata and vendor
// trees. A grouped declaration is satisfied by a comment on the group or
// on the individual spec, matching what godoc renders. Exits 1 listing
// every undocumented declaration, 2 on parse errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// skipDirs are directory names never descended into.
var skipDirs = map[string]bool{".git": true, "testdata": true, "vendor": true, "node_modules": true}

func main() {
	root := flag.String("root", ".", "directory tree to lint")
	flag.Parse()

	var missing []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(*root, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			if skipDirs[d.Name()] && path != *root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		missing = append(missing, lintFile(fset, f)...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "godoclint: %v\n", err)
		os.Exit(2)
	}
	for _, m := range missing {
		fmt.Fprintf(os.Stderr, "godoclint: %s\n", m)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "godoclint: %d undocumented exported declaration(s)\n", len(missing))
		os.Exit(1)
	}
	fmt.Println("godoclint: all exported declarations documented")
}

// lintFile returns one finding per undocumented exported declaration in f.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	flag := func(pos token.Pos, kind, name string) {
		out = append(out, fmt.Sprintf("%s: %s %s undocumented", fset.Position(pos), kind, name))
	}
	for _, d := range f.Decls {
		switch dd := d.(type) {
		case *ast.FuncDecl:
			if dd.Name.IsExported() && dd.Doc == nil {
				flag(dd.Pos(), "func", dd.Name.Name)
			}
		case *ast.GenDecl:
			for _, sp := range dd.Specs {
				switch s := sp.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && dd.Doc == nil && s.Doc == nil && s.Comment == nil {
						flag(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && dd.Doc == nil && s.Doc == nil && s.Comment == nil {
							flag(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return out
}
