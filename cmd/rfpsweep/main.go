// Command rfpsweep runs a configuration-space sweep — the paper's Figures
// 13–18 are all sweeps — as a fault-tolerant orchestration over either the
// in-process runner or a fleet of rfpsimd daemons. Every completed unit is
// journalled to an append-only JSONL checkpoint, so a crashed or killed
// sweep resumes with -resume and re-runs only the missing units; the final
// CSV is byte-identical however many times the sweep was interrupted and
// whichever backend executed it. See docs/sweep.md for the spec format.
//
// Usage:
//
//	rfpsweep -spec sweep.json [-out sweep.csv] [-checkpoint sweep.ckpt]
//	         [-resume] [-endpoints http://a:8080,http://b:8080]
//	         [-parallel N] [-retries N] [-progress 5s] [-metrics] [-dry-run]
//	         [-timings timings.csv] [-metrics-addr :9090]
//	         [-log-format text|json] [-log-level info]
//	         [-traces a.rfpt,b.rfpt]
//
// -traces registers .rfpt files (made with cmd/tracegen, including
// -from-champsim conversions) so the spec's workloads list can reference
// them as "trace:<sha256>": in-process sweeps read them from a local
// store, fleet sweeps upload them to every endpoint via POST /v1/traces
// first. See docs/traces.md.
//
// -timings writes a per-unit, per-stage wall-time CSV next to the (still
// byte-deterministic) aggregate CSV; -metrics-addr serves the sweep's live
// Prometheus counters over HTTP for the duration of the run. See
// docs/observability.md.
//
// A spec with "mode": "check_diff" runs the differential correctness
// oracle (docs/checking.md) over the grid instead of simulations: each
// configuration is paired against its diff_mode-derived base, committed
// digests are compared, and the exit status gates on zero divergence and
// zero invariant violations. In-process only; no checkpoint/resume.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfpsim/internal/obs"
	"rfpsim/internal/service"
	"rfpsim/internal/sweep"
)

func main() {
	var (
		specPath    = flag.String("spec", "", "sweep spec JSON file (required)")
		outPath     = flag.String("out", "", "aggregate CSV output file (default stdout)")
		checkpoint  = flag.String("checkpoint", "", "append-only JSONL checkpoint journal")
		resume      = flag.Bool("resume", false, "replay the checkpoint and run only missing units")
		endpoints   = flag.String("endpoints", "", "comma-separated rfpsimd base URLs (empty = run in-process)")
		parallel    = flag.Int("parallel", 0, "units in flight at once (0 = 4)")
		retries     = flag.Int("retries", 0, "max attempts per unit on the http backend (0 = 8)")
		progress    = flag.Duration("progress", 5*time.Second, "progress/ETA report interval (0 = quiet)")
		metrics     = flag.Bool("metrics", false, "dump Prometheus-style sweep counters to stderr at the end")
		metricsAddr = flag.String("metrics-addr", "", "serve live sweep metrics at http://ADDR/metrics while the sweep runs")
		timingsPath = flag.String("timings", "", "write a per-unit stage timing CSV (experiment,stage,seconds) to this file")
		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
		dryRun      = flag.Bool("dry-run", false, "expand and print the unit grid without running it")
		hedge       = flag.Bool("hedge", false, "race a speculative duplicate attempt on a second endpoint once a unit exceeds the observed p95 latency")
		hedgeMin    = flag.Duration("hedge-min", 0, "floor on the hedge trigger delay (0 = 250ms)")
		tracesFlag  = flag.String("traces", "", "comma-separated .rfpt files to register before the sweep, enabling trace:<sha256> workload entries (loaded into the in-process store, or uploaded to every -endpoints daemon)")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "rfpsweep: -spec is required (see docs/sweep.md)")
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "rfpsweep: -resume needs -checkpoint")
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfpsweep: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	raw, err := os.ReadFile(*specPath)
	if err != nil {
		fatal(err)
	}
	spec, err := sweep.ParseSpec(raw)
	if err != nil {
		fatal(err)
	}

	// mode "check_diff" runs the differential oracle over the grid
	// instead of plain simulations: in-process only (both sides of every
	// pair must run in one process to compare digests), no checkpointing.
	if spec.CheckDiff() {
		if *endpoints != "" || *checkpoint != "" || *resume || *timingsPath != "" {
			fmt.Fprintln(os.Stderr, "rfpsweep: mode check_diff runs in-process only (no -endpoints, -checkpoint, -resume or -timings)")
			os.Exit(2)
		}
		runCheckDiff(spec, *outPath, *parallel, *dryRun, *progress > 0, *metrics, *metricsAddr, logger)
		return
	}

	units, err := spec.Expand()
	if err != nil {
		fatal(err)
	}
	if *dryRun {
		for _, u := range units {
			fmt.Printf("%s %s\n", u.Key[:12], u.Label)
		}
		fmt.Fprintf(os.Stderr, "rfpsweep: %d units\n", len(units))
		return
	}

	m := &sweep.Metrics{}
	var backend sweep.Backend
	if *endpoints != "" {
		urls := strings.Split(*endpoints, ",")
		for i := range urls {
			urls[i] = strings.TrimSuffix(strings.TrimSpace(urls[i]), "/")
		}
		if err := registerTraces(*tracesFlag, urls, nil, logger); err != nil {
			fatal(err)
		}
		backend, err = sweep.NewHTTPBackend(urls, sweep.HTTPBackendOptions{
			MaxAttempts:   *retries,
			Metrics:       m,
			Hedge:         *hedge,
			HedgeMinDelay: *hedgeMin,
		})
		if err != nil {
			fatal(err)
		}
	} else {
		store := service.NewTraceStore(0, 0, nil)
		if err := registerTraces(*tracesFlag, nil, store, logger); err != nil {
			fatal(err)
		}
		backend = sweep.LocalBackend{Metrics: m, Traces: store}
	}

	opts := sweep.Options{
		Parallel:       *parallel,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		ProgressEvery:  *progress,
	}
	if *progress > 0 {
		opts.Progress = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = obs.WithLogger(ctx, logger)

	// -metrics-addr serves the live counters while the sweep runs, from the
	// same registry machinery rfpsimd uses; scraping it answers "is the
	// sweep stuck or just slow" without touching the orchestrator.
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(m)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		msrv := &http.Server{Addr: *metricsAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics server failed", "addr", *metricsAddr, "err", err.Error())
			}
		}()
		defer msrv.Close()
		logger.Info("serving sweep metrics", "addr", *metricsAddr)
	}

	sum, runErr := sweep.Run(ctx, units, backend, opts, m)
	if *metrics && sum != nil {
		m.WritePrometheus(os.Stderr)
	}
	if *timingsPath != "" && sum != nil {
		if err := writeTimings(*timingsPath, sum); err != nil {
			fmt.Fprintf(os.Stderr, "rfpsweep: %v\n", err)
		}
	}
	if runErr != nil {
		if ctx.Err() != nil && *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "rfpsweep: interrupted with %d/%d units journalled; rerun with -resume to finish\n",
				len(sum.Results), len(units))
		}
		fatal(runErr)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}
	if err := sum.WriteCSV(out); err != nil {
		fatal(err)
	}
}

// runCheckDiff executes a mode "check_diff" sweep: every grid point's
// configuration is paired against its diff-mode base and the committed
// digests compared (see docs/checking.md). Exits 0 only when every
// pairing is identical and violation-free, so CI can gate on it.
func runCheckDiff(spec *sweep.Spec, outPath string, parallel int, dryRun, progress, metrics bool, metricsAddr string, logger *slog.Logger) {
	units, err := spec.ExpandDiff()
	if err != nil {
		fatal(err)
	}
	if dryRun {
		for _, u := range units {
			fmt.Println(u.Label)
		}
		fmt.Fprintf(os.Stderr, "rfpsweep: %d diff units\n", len(units))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx = obs.WithLogger(ctx, logger)

	m := &sweep.Metrics{}
	if metricsAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(m)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		msrv := &http.Server{Addr: metricsAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("metrics server failed", "addr", metricsAddr, "err", err.Error())
			}
		}()
		defer msrv.Close()
		logger.Info("serving sweep metrics", "addr", metricsAddr)
	}

	var progressW io.Writer
	if progress {
		progressW = os.Stderr
	}
	sum, runErr := sweep.RunCheckDiff(ctx, units, parallel, m, progressW)
	if metrics && sum != nil {
		m.WritePrometheus(os.Stderr)
	}
	if runErr != nil {
		fatal(runErr)
	}

	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}
	if err := sum.WriteCSV(out); err != nil {
		fatal(err)
	}
	if !sum.Clean() {
		fatal(fmt.Errorf("check_diff found divergence or invariant violations (see output above)"))
	}
}

// registerTraces makes the listed .rfpt files resolvable as
// "trace:<sha256>" workload entries: into the local store for in-process
// sweeps, or via POST /v1/traces to every endpoint for fleet sweeps (each
// daemon validates and content-addresses the bytes itself, so a re-upload
// of already-known bytes is a free dedup). The logged addresses are what
// the spec's workloads list should reference.
func registerTraces(list string, urls []string, store *service.TraceStore, logger *slog.Logger) error {
	if list == "" {
		return nil
	}
	for _, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if store != nil {
			info, dedup, err := store.Add(raw)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			logger.Info("trace registered", "file", path, "workload", info.Workload, "uops", info.Uops, "dedup", dedup)
			continue
		}
		for _, u := range urls {
			resp, err := http.Post(u+"/v1/traces", "application/octet-stream", bytes.NewReader(raw))
			if err != nil {
				return fmt.Errorf("uploading %s to %s: %w", path, u, err)
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("uploading %s to %s: %s: %s", path, u, resp.Status, strings.TrimSpace(string(body)))
			}
			var up service.TraceUploadResponse
			if err := json.Unmarshal(body, &up); err != nil {
				return fmt.Errorf("uploading %s to %s: bad response: %w", path, u, err)
			}
			logger.Info("trace uploaded", "file", path, "endpoint", u, "workload", up.Workload, "uops", up.Uops, "dedup", up.Dedup)
		}
	}
	return nil
}

// writeTimings dumps the per-unit stage breakdown collected during this
// process's run. Units replayed from the checkpoint or served from a
// daemon's cache have no timing rows — their cost was paid elsewhere.
func writeTimings(path string, sum *sweep.Summary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sum.WriteTimingsCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rfpsweep: %v\n", err)
	os.Exit(1)
}
