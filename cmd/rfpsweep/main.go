// Command rfpsweep runs a configuration-space sweep — the paper's Figures
// 13–18 are all sweeps — as a fault-tolerant orchestration over either the
// in-process runner or a fleet of rfpsimd daemons. Every completed unit is
// journalled to an append-only JSONL checkpoint, so a crashed or killed
// sweep resumes with -resume and re-runs only the missing units; the final
// CSV is byte-identical however many times the sweep was interrupted and
// whichever backend executed it. See docs/sweep.md for the spec format.
//
// Usage:
//
//	rfpsweep -spec sweep.json [-out sweep.csv] [-checkpoint sweep.ckpt]
//	         [-resume] [-endpoints http://a:8080,http://b:8080]
//	         [-parallel N] [-retries N] [-progress 5s] [-metrics] [-dry-run]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfpsim/internal/sweep"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "sweep spec JSON file (required)")
		outPath    = flag.String("out", "", "aggregate CSV output file (default stdout)")
		checkpoint = flag.String("checkpoint", "", "append-only JSONL checkpoint journal")
		resume     = flag.Bool("resume", false, "replay the checkpoint and run only missing units")
		endpoints  = flag.String("endpoints", "", "comma-separated rfpsimd base URLs (empty = run in-process)")
		parallel   = flag.Int("parallel", 0, "units in flight at once (0 = 4)")
		retries    = flag.Int("retries", 0, "max attempts per unit on the http backend (0 = 8)")
		progress   = flag.Duration("progress", 5*time.Second, "progress/ETA report interval (0 = quiet)")
		metrics    = flag.Bool("metrics", false, "dump Prometheus-style sweep counters to stderr at the end")
		dryRun     = flag.Bool("dry-run", false, "expand and print the unit grid without running it")
	)
	flag.Parse()
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "rfpsweep: -spec is required (see docs/sweep.md)")
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "rfpsweep: -resume needs -checkpoint")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*specPath)
	if err != nil {
		fatal(err)
	}
	spec, err := sweep.ParseSpec(raw)
	if err != nil {
		fatal(err)
	}
	units, err := spec.Expand()
	if err != nil {
		fatal(err)
	}
	if *dryRun {
		for _, u := range units {
			fmt.Printf("%s %s\n", u.Key[:12], u.Label)
		}
		fmt.Fprintf(os.Stderr, "rfpsweep: %d units\n", len(units))
		return
	}

	m := &sweep.Metrics{}
	var backend sweep.Backend
	if *endpoints != "" {
		urls := strings.Split(*endpoints, ",")
		for i := range urls {
			urls[i] = strings.TrimSuffix(strings.TrimSpace(urls[i]), "/")
		}
		backend, err = sweep.NewHTTPBackend(urls, sweep.HTTPBackendOptions{
			MaxAttempts: *retries,
			Metrics:     m,
		})
		if err != nil {
			fatal(err)
		}
	} else {
		backend = sweep.LocalBackend{Metrics: m}
	}

	opts := sweep.Options{
		Parallel:       *parallel,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		ProgressEvery:  *progress,
	}
	if *progress > 0 {
		opts.Progress = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sum, runErr := sweep.Run(ctx, units, backend, opts, m)
	if *metrics && sum != nil {
		m.WritePrometheus(os.Stderr)
	}
	if runErr != nil {
		if ctx.Err() != nil && *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "rfpsweep: interrupted with %d/%d units journalled; rerun with -resume to finish\n",
				len(sum.Results), len(units))
		}
		fatal(runErr)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}
	if err := sum.WriteCSV(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rfpsweep: %v\n", err)
	os.Exit(1)
}
