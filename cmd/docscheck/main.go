// Command docscheck validates relative markdown links across the
// repository: every `[text](target)` in every *.md file must point at a
// file or directory that exists, and every `#fragment` — whether a pure
// in-page anchor or a fragment on a relative markdown link — must match a
// heading in the target document. CI runs it so documentation moves,
// renames and section retitles fail the build instead of silently rotting
// (docs/README.md is the index it protects).
//
// Usage:
//
//	docscheck [-root DIR]
//
// External links (http, https, mailto) are skipped; a leading "/" anchors
// the target at -root instead of the linking file's directory. Fragments
// are resolved against the target's ATX headings using GitHub's slug
// rules (lowercased, punctuation dropped, spaces to hyphens, duplicate
// headings suffixed -1, -2, ...); fenced code blocks are ignored when
// collecting headings. Fragments pointing into non-markdown targets are
// not checkable and pass. Exits 1 listing every broken link.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links. It deliberately does not match
// reference-style links or autolinks — the repo's docs use inline form.
// An optional quoted title (`[t](url "title")`) is consumed so only the
// URL part is captured.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// inlineRe strips inline link syntax from heading text before slugging:
// GitHub slugs `## See [docs](x.md)` from the text "See docs".
var inlineRe = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`)

// skipDirs are directory names never descended into.
var skipDirs = map[string]bool{".git": true, "node_modules": true, "testdata": true}

// brokenLink is one dangling reference: where it was written, what it
// points at, and why it failed.
type brokenLink struct {
	file   string // markdown file containing the link, root-relative
	target string // the link as written
	reason string // "missing target" or "missing anchor"
}

func main() {
	root := flag.String("root", ".", "repository root to scan")
	flag.Parse()

	broken, nfiles, nlinks, err := check(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	for _, b := range broken {
		fmt.Fprintf(os.Stderr, "docscheck: %s: broken link %q (%s)\n", b.file, b.target, b.reason)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s) in %d file(s) scanned\n", len(broken), nfiles)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d link(s) OK across %d markdown file(s)\n", nlinks, nfiles)
}

// mdFile is one scanned markdown document.
type mdFile struct {
	path string // filesystem path as walked
	rel  string // root-relative, for reporting
	data string
}

// check walks root, validates every relative link and fragment in every
// markdown file, and returns the broken ones plus scan counts. The walk
// collects all documents first so fragments can be resolved against the
// target file's headings regardless of visit order; files are reported in
// lexical order so the output is deterministic.
func check(root string) (broken []brokenLink, nfiles, nlinks int, err error) {
	var files []mdFile
	headings := map[string]map[string]bool{} // cleaned path -> heading slugs
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			if skipDirs[d.Name()] && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		files = append(files, mdFile{path: path, rel: rel, data: string(data)})
		headings[filepath.Clean(path)] = anchors(string(data))
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	nfiles = len(files)
	for _, f := range files {
		for _, target := range extractLinks(f.data) {
			nlinks++
			if ok, reason := resolve(root, f, target, headings); !ok {
				broken = append(broken, brokenLink{file: f.rel, target: target, reason: reason})
			}
		}
	}
	sort.Slice(broken, func(i, j int) bool {
		if broken[i].file != broken[j].file {
			return broken[i].file < broken[j].file
		}
		return broken[i].target < broken[j].target
	})
	return broken, nfiles, nlinks, nil
}

// extractLinks returns the checkable targets in one markdown document:
// external schemes are dropped here, not in the walker, so the per-file
// link count only counts what was verified. Pure `#anchor` links are kept
// — they validate against the document's own headings.
func extractLinks(doc string) []string {
	var targets []string
	for _, m := range linkRe.FindAllStringSubmatch(doc, -1) {
		t := m[1]
		if strings.HasPrefix(t, "http://") || strings.HasPrefix(t, "https://") ||
			strings.HasPrefix(t, "mailto:") {
			continue
		}
		targets = append(targets, t)
	}
	return targets
}

// resolve validates one link from f: the path part must exist on disk
// (dir-relative, or root-anchored with a leading "/") and the fragment,
// if any, must match a heading slug in the resolved markdown document.
// A fragment on a non-markdown target is not checkable and passes.
func resolve(root string, f mdFile, target string, headings map[string]map[string]bool) (ok bool, reason string) {
	frag := ""
	if i := strings.IndexByte(target, '#'); i >= 0 {
		frag, target = target[i+1:], target[:i]
	}
	resolved := f.path
	if target != "" {
		base := filepath.Dir(f.path)
		if strings.HasPrefix(target, "/") {
			base = root
			target = strings.TrimPrefix(target, "/")
		}
		resolved = filepath.Join(base, filepath.FromSlash(target))
		if _, err := os.Stat(resolved); err != nil {
			return false, "missing target"
		}
	}
	if frag == "" {
		return true, ""
	}
	slugs, scanned := headings[filepath.Clean(resolved)]
	if !scanned {
		return true, "" // fragment into a non-markdown (or unscanned) target
	}
	if !slugs[strings.ToLower(frag)] {
		return false, "missing anchor"
	}
	return true, ""
}

// anchors collects the GitHub anchor slugs of every ATX heading in doc.
// Lines inside fenced code blocks are skipped (a `# comment` in a shell
// snippet is not a heading); duplicate headings get -1, -2, ... suffixes,
// matching GitHub's renderer.
func anchors(doc string) map[string]bool {
	out := map[string]bool{}
	counts := map[string]int{}
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		level := 0
		for level < len(line) && line[level] == '#' {
			level++
		}
		if level > 6 || level >= len(line) || (line[level] != ' ' && line[level] != '\t') {
			continue
		}
		slug := slugify(line[level:])
		n := counts[slug]
		counts[slug]++
		if n > 0 {
			slug = fmt.Sprintf("%s-%d", slug, n)
		}
		out[slug] = true
	}
	return out
}

// slugify converts heading text to its GitHub anchor: inline link and
// code markup is stripped to its text, everything is lowercased, runes
// other than letters, digits, hyphens and underscores are dropped, and
// spaces become hyphens.
func slugify(text string) string {
	text = inlineRe.ReplaceAllString(strings.TrimSpace(text), "$1")
	text = strings.ReplaceAll(text, "`", "")
	var b strings.Builder
	for _, r := range strings.ToLower(text) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
