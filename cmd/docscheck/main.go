// Command docscheck validates relative markdown links across the
// repository: every `[text](target)` in every *.md file must point at a
// file or directory that exists. CI runs it so documentation moves and
// renames fail the build instead of silently rotting (docs/README.md is
// the index it protects).
//
// Usage:
//
//	docscheck [-root DIR]
//
// External links (http, https, mailto) and pure in-page anchors (#...)
// are skipped; fragments on relative links are stripped before the
// existence check; a leading "/" anchors the target at -root instead of
// the linking file's directory. Exits 1 listing every broken link.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe matches inline markdown links. It deliberately does not match
// reference-style links or autolinks — the repo's docs use inline form.
// An optional quoted title (`[t](url "title")`) is consumed so only the
// URL part is captured.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// skipDirs are directory names never descended into.
var skipDirs = map[string]bool{".git": true, "node_modules": true, "testdata": true}

// brokenLink is one dangling reference: where it was written and what it
// points at.
type brokenLink struct {
	file   string // markdown file containing the link, root-relative
	target string // the link as written
}

func main() {
	root := flag.String("root", ".", "repository root to scan")
	flag.Parse()

	broken, nfiles, nlinks, err := check(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	for _, b := range broken {
		fmt.Fprintf(os.Stderr, "docscheck: %s: broken link %q\n", b.file, b.target)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s) in %d file(s) scanned\n", len(broken), nfiles)
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d relative link(s) OK across %d markdown file(s)\n", nlinks, nfiles)
}

// check walks root, validates every relative link in every markdown file,
// and returns the broken ones plus scan counts. Files are visited in
// lexical walk order so the report is deterministic.
func check(root string) (broken []brokenLink, nfiles, nlinks int, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		if d.IsDir() {
			if skipDirs[d.Name()] && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		nfiles++
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		for _, target := range extractLinks(string(data)) {
			nlinks++
			if !targetExists(root, filepath.Dir(path), target) {
				broken = append(broken, brokenLink{file: rel, target: target})
			}
		}
		return nil
	})
	sort.Slice(broken, func(i, j int) bool {
		if broken[i].file != broken[j].file {
			return broken[i].file < broken[j].file
		}
		return broken[i].target < broken[j].target
	})
	return broken, nfiles, nlinks, err
}

// extractLinks returns the checkable relative targets in one markdown
// document: external schemes and pure anchors are dropped here, not in
// the walker, so the per-file link count only counts what was verified.
func extractLinks(doc string) []string {
	var targets []string
	for _, m := range linkRe.FindAllStringSubmatch(doc, -1) {
		t := m[1]
		if strings.HasPrefix(t, "http://") || strings.HasPrefix(t, "https://") ||
			strings.HasPrefix(t, "mailto:") || strings.HasPrefix(t, "#") {
			continue
		}
		targets = append(targets, t)
	}
	return targets
}

// targetExists resolves one relative link and stats it. dir is the
// linking file's directory; a leading "/" re-anchors at the repo root
// (the GitHub-render convention the docs use).
func targetExists(root, dir, target string) bool {
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return true // "[x](#anchor)" after fragment stripping
	}
	base := dir
	if strings.HasPrefix(target, "/") {
		base = root
		target = strings.TrimPrefix(target, "/")
	}
	_, err := os.Stat(filepath.Join(base, filepath.FromSlash(target)))
	return err == nil
}
