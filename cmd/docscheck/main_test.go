package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree materializes a map of relative path -> content under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckCleanTree(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"README.md":      "See [docs](docs/guide.md) and [the site](https://example.com) and [a section](#usage).\n",
		"docs/guide.md":  "Back to [readme](../README.md), [root-anchored](/README.md), [sibling dir](.), [frag](../README.md#top).\n",
		"docs/other.txt": "[not markdown](nowhere.md)\n",
	})
	broken, nfiles, nlinks, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("clean tree reported broken links: %v", broken)
	}
	if nfiles != 2 {
		t.Fatalf("scanned %d files, want 2 (the .txt must be skipped)", nfiles)
	}
	// README contributes 1 relative link; guide.md contributes 4.
	if nlinks != 5 {
		t.Fatalf("verified %d links, want 5", nlinks)
	}
}

func TestCheckReportsBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"README.md":     "A [dangling](docs/missing.md) link and a [good](docs/guide.md) one.\n",
		"docs/guide.md": "Another [dangling](/gone.md) one, root-anchored.\n",
	})
	broken, _, _, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 2 {
		t.Fatalf("got %d broken links, want 2: %v", len(broken), broken)
	}
	// Deterministic order: sorted by file, then target.
	if broken[0].file != "README.md" || broken[0].target != "docs/missing.md" {
		t.Errorf("broken[0] = %+v", broken[0])
	}
	if broken[1].file != filepath.Join("docs", "guide.md") || broken[1].target != "/gone.md" {
		t.Errorf("broken[1] = %+v", broken[1])
	}
}

func TestCheckSkipsGitAndTestdata(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"ok.md":               "nothing\n",
		".git/junk.md":        "[broken](nope.md)\n",
		"pkg/testdata/fix.md": "[broken](nope.md)\n",
	})
	broken, nfiles, _, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 || nfiles != 1 {
		t.Fatalf("skip dirs leaked: broken=%v nfiles=%d", broken, nfiles)
	}
}

func TestExtractLinks(t *testing.T) {
	doc := "[a](x.md) [b](http://e.com) [c](https://e.com) [d](mailto:x@y) [e](#frag) [f](y.md#s) [g](dir/z.md \"title\")"
	got := extractLinks(doc)
	want := []string{"x.md", "y.md#s", "dir/z.md"}
	if len(got) != len(want) {
		t.Fatalf("extractLinks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("extractLinks[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
