package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree materializes a map of relative path -> content under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		p := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckCleanTree(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"README.md": "# Top\n## Usage\nSee [docs](docs/guide.md) and [the site](https://example.com) and [a section](#usage).\n",
		"docs/guide.md": "Back to [readme](../README.md), [root-anchored](/README.md), [sibling dir](.), " +
			"[frag](../README.md#top), [root frag](/README.md#usage).\n",
		"docs/other.txt": "[not markdown](nowhere.md)\n",
	})
	broken, nfiles, nlinks, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("clean tree reported broken links: %v", broken)
	}
	if nfiles != 2 {
		t.Fatalf("scanned %d files, want 2 (the .txt must be skipped)", nfiles)
	}
	// README contributes 2 checkable links (one a pure anchor); guide.md
	// contributes 5.
	if nlinks != 7 {
		t.Fatalf("verified %d links, want 7", nlinks)
	}
}

func TestCheckReportsBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"README.md":     "A [dangling](docs/missing.md) link and a [good](docs/guide.md) one.\n",
		"docs/guide.md": "Another [dangling](/gone.md) one, root-anchored.\n",
	})
	broken, _, _, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 2 {
		t.Fatalf("got %d broken links, want 2: %v", len(broken), broken)
	}
	// Deterministic order: sorted by file, then target.
	if broken[0].file != "README.md" || broken[0].target != "docs/missing.md" {
		t.Errorf("broken[0] = %+v", broken[0])
	}
	if broken[1].file != filepath.Join("docs", "guide.md") || broken[1].target != "/gone.md" {
		t.Errorf("broken[1] = %+v", broken[1])
	}
}

func TestCheckReportsBrokenAnchors(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"README.md": "# Intro\n[ok](#intro) [bad](#missing) [cross ok](docs/g.md#setup) [cross bad](docs/g.md#gone)\n" +
			"[unverifiable](data.bin#whatever)\n",
		"docs/g.md": "## Setup\n",
		"data.bin":  "not markdown",
	})
	broken, _, nlinks, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if nlinks != 5 {
		t.Fatalf("verified %d links, want 5", nlinks)
	}
	if len(broken) != 2 {
		t.Fatalf("got %d broken links, want 2: %v", len(broken), broken)
	}
	if broken[0].target != "#missing" || broken[0].reason != "missing anchor" {
		t.Errorf("broken[0] = %+v", broken[0])
	}
	if broken[1].target != "docs/g.md#gone" || broken[1].reason != "missing anchor" {
		t.Errorf("broken[1] = %+v", broken[1])
	}
}

func TestCheckSkipsGitAndTestdata(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"ok.md":               "nothing\n",
		".git/junk.md":        "[broken](nope.md)\n",
		"pkg/testdata/fix.md": "[broken](nope.md)\n",
	})
	broken, nfiles, _, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 || nfiles != 1 {
		t.Fatalf("skip dirs leaked: broken=%v nfiles=%d", broken, nfiles)
	}
}

func TestExtractLinks(t *testing.T) {
	doc := "[a](x.md) [b](http://e.com) [c](https://e.com) [d](mailto:x@y) [e](#frag) [f](y.md#s) [g](dir/z.md \"title\")"
	got := extractLinks(doc)
	want := []string{"x.md", "#frag", "y.md#s", "dir/z.md"}
	if len(got) != len(want) {
		t.Fatalf("extractLinks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("extractLinks[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAnchors(t *testing.T) {
	doc := "# My Heading!\n" +
		"## `code` & words\n" +
		"## Dup\n" +
		"## Dup\n" +
		"```\n# not a heading\n```\n" +
		"####### too deep\n" +
		"#nospace\n" +
		"## With [a link](x.md) inside\n"
	got := anchors(doc)
	for _, want := range []string{
		"my-heading", "code--words", "dup", "dup-1", "with-a-link-inside",
	} {
		if !got[want] {
			t.Errorf("anchors missing %q (got %v)", want, got)
		}
	}
	for _, bad := range []string{"not-a-heading", "too-deep", "nospace", "dup-2"} {
		if got[bad] {
			t.Errorf("anchors wrongly contains %q", bad)
		}
	}
}
