// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig10
//	experiments -run all [-quick] [-warmup N] [-measure N] [-parallel N]
//
// Each experiment prints rows shaped like the corresponding paper chart
// plus the paper's reference numbers in its title, so the reproduction can
// be compared at a glance.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfpsim/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		quick    = flag.Bool("quick", false, "reduced workload subset and windows (smoke runs)")
		warmup   = flag.Uint64("warmup", 0, "override warmup uops per workload")
		measure  = flag.Uint64("measure", 0, "override measured uops per workload")
		parallel = flag.Int("parallel", 0, "max concurrent workload simulations (0 = NumCPU)")
		seeds    = flag.Int("seeds", 1, "seed replicas per workload (statistical averaging)")
		csvPath  = flag.String("csv", "", "append machine-readable metrics to this CSV file")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-15s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nuse -run <id> or -run all")
			os.Exit(2)
		}
		return
	}

	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}
	if *warmup > 0 {
		opts.WarmupUops = *warmup
	}
	if *measure > 0 {
		opts.MeasureUops = *measure
	}
	opts.Parallel = *parallel
	opts.Seeds = *seeds

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var csvW *csv.Writer
	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		csvFile = f
		csvW = csv.NewWriter(f)
		// A fresh (empty) file gets the column header; appending to an
		// existing file must not repeat it.
		if st, err := f.Stat(); err == nil && st.Size() == 0 {
			csvW.Write(experiments.MetricsCSVHeader)
		}
	}
	// flushCSV surfaces buffered csv.Writer errors — a full disk must not
	// produce a silently truncated CSV and exit code 0.
	flushCSV := func() {
		if csvW == nil {
			return
		}
		csvW.Flush()
		if err := csvW.Error(); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *csvPath, err)
			os.Exit(1)
		}
		if err := csvFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "closing %s: %v\n", *csvPath, err)
			os.Exit(1)
		}
	}

	var ids []string
	if *run == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	for _, id := range ids {
		e, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res, err := e.Run(ctx, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s: %s (%.1fs)\n", res.ID, res.Title, time.Since(start).Seconds())
		fmt.Println(res.Text)
		if csvW != nil {
			for _, k := range res.MetricKeys() {
				csvW.Write([]string{res.ID, k, experiments.FormatMetric(res.Metrics[k])})
			}
		}
	}
	flushCSV()
}
