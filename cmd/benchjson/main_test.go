package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: rfpsim
cpu: Some CPU @ 2.00GHz
BenchmarkSimulatorThroughput-16         	      37	  31415926 ns/op	   12.34 muops_per_sec	 1024 B/op	       3 allocs/op
BenchmarkFig2Speedup-16                 	       1	1234567890 ns/op	    3.10 speedup_pct	  512 B/op	       2 allocs/op
PASS
ok  	rfpsim	12.345s
`
	results, err := ParseBenchOutput(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	first := results[0]
	if first.Name != "BenchmarkSimulatorThroughput" {
		t.Errorf("name = %q (procs suffix not stripped?)", first.Name)
	}
	if first.Iterations != 37 {
		t.Errorf("iterations = %d, want 37", first.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 31415926, "muops_per_sec": 12.34, "B/op": 1024, "allocs/op": 3,
	} {
		if got := first.Metrics[unit]; got != want {
			t.Errorf("metric %s = %g, want %g", unit, got, want)
		}
	}
	if got := results[1].Metrics["speedup_pct"]; got != 3.10 {
		t.Errorf("custom metric speedup_pct = %g, want 3.10", got)
	}
}

func TestParseBenchOutputRejectsMalformed(t *testing.T) {
	if _, err := ParseBenchOutput("BenchmarkX-8 notanumber 5 ns/op\n"); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := ParseBenchOutput("BenchmarkX-8 10 5 ns/op trailing\n"); err == nil {
		t.Error("odd value/unit pairing accepted")
	}
	if _, err := ParseBenchOutput("BenchmarkX-8 10 abc ns/op\n"); err == nil {
		t.Error("bad metric value accepted")
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-16":  "BenchmarkFoo",
		"BenchmarkFoo":     "BenchmarkFoo",
		"BenchmarkFoo-bar": "BenchmarkFoo-bar",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
