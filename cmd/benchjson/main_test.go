package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: rfpsim
cpu: Some CPU @ 2.00GHz
BenchmarkSimulatorThroughput-16         	      37	  31415926 ns/op	   12.34 muops_per_sec	 1024 B/op	       3 allocs/op
BenchmarkFig2Speedup-16                 	       1	1234567890 ns/op	    3.10 speedup_pct	  512 B/op	       2 allocs/op
PASS
ok  	rfpsim	12.345s
`
	results, err := ParseBenchOutput(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	first := results[0]
	if first.Name != "BenchmarkSimulatorThroughput" {
		t.Errorf("name = %q (procs suffix not stripped?)", first.Name)
	}
	if first.Iterations != 37 {
		t.Errorf("iterations = %d, want 37", first.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 31415926, "muops_per_sec": 12.34, "B/op": 1024, "allocs/op": 3,
	} {
		if got := first.Metrics[unit]; got != want {
			t.Errorf("metric %s = %g, want %g", unit, got, want)
		}
	}
	if got := results[1].Metrics["speedup_pct"]; got != 3.10 {
		t.Errorf("custom metric speedup_pct = %g, want 3.10", got)
	}
}

func TestParseBenchOutputRejectsMalformed(t *testing.T) {
	if _, err := ParseBenchOutput("BenchmarkX-8 notanumber 5 ns/op\n"); err == nil {
		t.Error("bad iteration count accepted")
	}
	if _, err := ParseBenchOutput("BenchmarkX-8 10 5 ns/op trailing\n"); err == nil {
		t.Error("odd value/unit pairing accepted")
	}
	if _, err := ParseBenchOutput("BenchmarkX-8 10 abc ns/op\n"); err == nil {
		t.Error("bad metric value accepted")
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-16":  "BenchmarkFoo",
		"BenchmarkFoo":     "BenchmarkFoo",
		"BenchmarkFoo-bar": "BenchmarkFoo-bar",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

// report builds a single-benchmark Report for the compare tests.
func report(name string, metrics map[string]float64) Report {
	return Report{Benchmarks: []Result{{Name: name, Iterations: 1, Metrics: metrics}}}
}

func TestCompareReportsGatesUopsDrop(t *testing.T) {
	base := report("BenchmarkRFPSimulatorThroughput",
		map[string]float64{"uops/s": 1_500_000, "allocs/op": 0})

	// A planted >10% throughput regression must fail the gate.
	bad := report("BenchmarkRFPSimulatorThroughput",
		map[string]float64{"uops/s": 1_200_000, "allocs/op": 0})
	regs, err := CompareReports(base, bad, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "uops/s" {
		t.Fatalf("planted 20%% uops/s drop produced %v, want one uops/s regression", regs)
	}

	// A drop inside the tolerance passes.
	ok := report("BenchmarkRFPSimulatorThroughput",
		map[string]float64{"uops/s": 1_400_000, "allocs/op": 0})
	regs, err = CompareReports(base, ok, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("7%% drop within tolerance flagged: %v", regs)
	}
}

func TestCompareReportsGatesAllocsGrowth(t *testing.T) {
	base := report("BenchmarkSimulatorThroughput",
		map[string]float64{"uops/s": 1_000_000, "allocs/op": 0})
	// Any allocation against a zero-alloc baseline fails.
	bad := report("BenchmarkSimulatorThroughput",
		map[string]float64{"uops/s": 1_000_000, "allocs/op": 1})
	regs, err := CompareReports(base, bad, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("alloc regression vs zero baseline produced %v, want one allocs/op regression", regs)
	}
}

func TestCompareReportsIntersection(t *testing.T) {
	base := Report{Benchmarks: []Result{
		{Name: "BenchmarkA", Metrics: map[string]float64{"uops/s": 100, "allocs/op": 5}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"allocs/op": 7}},
	}}
	// Benchmarks only in the baseline are ignored; metrics missing on
	// either side are skipped.
	cur := Report{Benchmarks: []Result{
		{Name: "BenchmarkA", Metrics: map[string]float64{"uops/s": 99, "allocs/op": 5}},
	}}
	regs, err := CompareReports(base, cur, 0.10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	// An empty intersection is a gate misconfiguration, not a pass.
	if _, err := CompareReports(base, report("BenchmarkC", map[string]float64{"uops/s": 1}), 0.10, 0); err == nil {
		t.Error("disjoint benchmark sets compared without error")
	}
}

func TestCheckBenchStream(t *testing.T) {
	good := "goos: linux\nBenchmarkX-8 10 5 ns/op\nPASS\nok  \trfpsim\t1.2s\n"
	if err := CheckBenchStream(good); err != nil {
		t.Errorf("clean stream rejected: %v", err)
	}
	midFail := "BenchmarkX-8 10 5 ns/op\n--- FAIL: BenchmarkY\nFAIL\n"
	if err := CheckBenchStream(midFail); err == nil {
		t.Error("mid-stream benchmark failure accepted")
	}
	truncated := "goos: linux\nBenchmarkX-8 10 5 ns/op\n"
	if err := CheckBenchStream(truncated); err == nil {
		t.Error("truncated stream (no PASS marker) accepted")
	}
}
