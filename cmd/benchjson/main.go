// Command benchjson runs the repository's bench_test.go benchmarks and
// writes the results as machine-readable JSON, so performance numbers can
// be archived per date and diffed across commits instead of living in
// scrollback.
//
// Usage:
//
//	benchjson [-bench regexp] [-benchtime 1x] [-out BENCH_<date>.json]
//
// The default output name embeds today's date (BENCH_2006-01-02.json).
// The file records the toolchain, host shape and every benchmark's full
// metric set — the standard ns/op, B/op and allocs/op plus the custom
// experiment metrics (speedup_pct, coverage_pct, ...) bench_test.go
// reports.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed output line.
type Result struct {
	// Name is the benchmark name with the -<procs> suffix stripped.
	Name string `json:"name"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the line
	// (ns/op, B/op, allocs/op and custom units alike).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the file schema.
type Report struct {
	// Date is the run date (YYYY-MM-DD).
	Date string `json:"date"`
	// GoVersion, GOOS, GOARCH and CPUs describe the machine the numbers
	// came from; comparing files across different hosts compares hosts.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// Bench and Benchtime echo the selection the run used.
	Bench     string `json:"bench"`
	Benchtime string `json:"benchtime"`
	// Benchmarks lists every parsed result in output order.
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark selection regexp (go test -bench)")
		benchtime = flag.String("benchtime", "1x", "per-benchmark budget (go test -benchtime)")
		out       = flag.String("out", "", "output path (default BENCH_<date>.json)")
	)
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-benchmem", ".")
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench failed: %v\n%s", err, outBytes)
		os.Exit(1)
	}

	results, err := ParseBenchOutput(string(outBytes))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched -bench %q\n", *bench)
		os.Exit(1)
	}

	rep := Report{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Benchmarks: results,
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), path)
}

// ParseBenchOutput extracts benchmark result lines from `go test -bench`
// output. A result line is
//
//	BenchmarkName-8    100    12345 ns/op    67 B/op    8 allocs/op ...
//
// a benchmark identifier, an iteration count, then one or more
// "value unit" metric pairs. Lines that do not match (the goos/pkg
// header, PASS, ok) are skipped; a line that starts like a benchmark but
// fails to parse is an error rather than silently dropped data.
func ParseBenchOutput(out string) ([]Result, error) {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		if (len(fields)-2)%2 != 0 {
			return nil, fmt.Errorf("odd value/unit pairing in %q", line)
		}
		r := Result{
			Name:       trimProcs(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", line, err)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	return results, nil
}

// trimProcs strips the trailing -<GOMAXPROCS> go test appends to
// benchmark names, so files from machines with different core counts
// diff cleanly.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
