// Command benchjson runs the repository's bench_test.go benchmarks and
// writes the results as machine-readable JSON, so performance numbers can
// be archived per date and diffed across commits instead of living in
// scrollback.
//
// Usage:
//
//	benchjson [-bench regexp] [-benchtime 1x] [-out BENCH_<date>.json]
//	          [-date YYYY-MM-DD] [-compare BENCH_<date>.json]
//
// The default output name embeds the run date (BENCH_2006-01-02.json);
// -date overrides the stamp so CI runs are reproducible. The file records
// the toolchain, host shape and every benchmark's full metric set — the
// standard ns/op, B/op and allocs/op plus the custom experiment metrics
// (speedup_pct, coverage_pct, ...) bench_test.go reports.
//
// With -compare, the fresh run is additionally diffed against a committed
// baseline file and the command exits non-zero when a shared benchmark
// regresses: uops/s dropping more than -max-uops-drop (default 10%), or
// allocs/op growing more than -max-allocs-growth (default 0: any increase
// fails, guarding the zero-alloc cycle loop). This is the CI perf gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed output line.
type Result struct {
	// Name is the benchmark name with the -<procs> suffix stripped.
	Name string `json:"name"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "value unit" pair on the line
	// (ns/op, B/op, allocs/op and custom units alike).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the file schema.
type Report struct {
	// Date is the run date (YYYY-MM-DD).
	Date string `json:"date"`
	// GoVersion, GOOS, GOARCH and CPUs describe the machine the numbers
	// came from; comparing files across different hosts compares hosts.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// Bench and Benchtime echo the selection the run used.
	Bench     string `json:"bench"`
	Benchtime string `json:"benchtime"`
	// Benchmarks lists every parsed result in output order.
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		bench      = flag.String("bench", ".", "benchmark selection regexp (go test -bench)")
		benchtime  = flag.String("benchtime", "1x", "per-benchmark budget (go test -benchtime)")
		out        = flag.String("out", "", "output path (default BENCH_<date>.json)")
		date       = flag.String("date", "", "date stamp for the report and default filename (default today)")
		compare    = flag.String("compare", "", "baseline BENCH_*.json to gate the fresh run against")
		maxDrop    = flag.Float64("max-uops-drop", 0.10, "max fractional uops/s drop vs baseline before failing")
		maxAllocUp = flag.Float64("max-allocs-growth", 0, "max fractional allocs/op growth vs baseline before failing")
	)
	flag.Parse()

	stamp := *date
	if stamp == "" {
		stamp = time.Now().Format("2006-01-02")
	}
	path := *out
	if path == "" {
		path = "BENCH_" + stamp + ".json"
	}

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-benchmem", ".")
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test -bench failed: %v\n%s", err, outBytes)
		os.Exit(1)
	}
	// A zero exit status is not proof the stream is whole: verify the run
	// terminated cleanly so a truncated or partially failed benchmark
	// stream never produces a silently shorter report.
	if err := CheckBenchStream(string(outBytes)); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n%s", err, outBytes)
		os.Exit(1)
	}

	results, err := ParseBenchOutput(string(outBytes))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks matched -bench %q\n", *bench)
		os.Exit(1)
	}

	rep := Report{
		Date:       stamp,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Benchmarks: results,
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), path)

	if *compare == "" {
		return
	}
	baseBytes, err := os.ReadFile(*compare)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var baseline Report
	if err := json.Unmarshal(baseBytes, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing baseline %s: %v\n", *compare, err)
		os.Exit(1)
	}
	regs, err := CompareReports(baseline, rep, *maxDrop, *maxAllocUp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) vs %s (%s):\n", len(regs), *compare, baseline.Date)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("no regressions vs %s (%s)\n", *compare, baseline.Date)
}

// Regression is one perf-gate violation: a shared benchmark whose gated
// metric moved past its allowed bound.
type Regression struct {
	Bench  string
	Metric string
	Old    float64
	New    float64
}

// String renders the regression as "bench: metric old -> new".
func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %g -> %g", r.Bench, r.Metric, r.Old, r.New)
}

// CompareReports gates current against baseline. Only benchmarks present
// in both reports are compared (the gate typically re-runs a throughput
// subset of a full-suite baseline); an empty intersection is an error so a
// misconfigured selection regexp cannot pass vacuously. For each shared
// benchmark, uops/s may not drop by more than maxUopsDrop (fractional) and
// allocs/op may not grow by more than maxAllocsGrowth; with a zero-alloc
// baseline any allocation at all fails.
func CompareReports(baseline, current Report, maxUopsDrop, maxAllocsGrowth float64) ([]Regression, error) {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	var regs []Regression
	shared := 0
	for _, cur := range current.Benchmarks {
		old, ok := base[cur.Name]
		if !ok {
			continue
		}
		shared++
		if ov, ok := old.Metrics["uops/s"]; ok {
			if nv, ok := cur.Metrics["uops/s"]; ok && nv < ov*(1-maxUopsDrop) {
				regs = append(regs, Regression{cur.Name, "uops/s", ov, nv})
			}
		}
		if ov, ok := old.Metrics["allocs/op"]; ok {
			if nv, ok := cur.Metrics["allocs/op"]; ok && nv > ov*(1+maxAllocsGrowth) {
				regs = append(regs, Regression{cur.Name, "allocs/op", ov, nv})
			}
		}
	}
	if shared == 0 {
		return nil, fmt.Errorf("no benchmarks shared between baseline (%d) and current run (%d); check the -bench selection",
			len(baseline.Benchmarks), len(current.Benchmarks))
	}
	return regs, nil
}

// CheckBenchStream verifies a `go test -bench` stream ran to completion:
// no benchmark reported a failure mid-stream, and the trailing PASS/ok
// markers are present (their absence means the stream was truncated — an
// OOM-killed or crashed test binary can exit before the tail without the
// parent seeing a useful status).
func CheckBenchStream(out string) error {
	if strings.Contains(out, "--- FAIL") {
		return fmt.Errorf("a benchmark failed mid-stream")
	}
	if !strings.Contains(out, "\nPASS") && !strings.HasPrefix(out, "PASS") {
		return fmt.Errorf("benchmark stream has no PASS marker (truncated output?)")
	}
	return nil
}

// ParseBenchOutput extracts benchmark result lines from `go test -bench`
// output. A result line is
//
//	BenchmarkName-8    100    12345 ns/op    67 B/op    8 allocs/op ...
//
// a benchmark identifier, an iteration count, then one or more
// "value unit" metric pairs. Lines that do not match (the goos/pkg
// header, PASS, ok) are skipped; a line that starts like a benchmark but
// fails to parse is an error rather than silently dropped data.
func ParseBenchOutput(out string) ([]Result, error) {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		if (len(fields)-2)%2 != 0 {
			return nil, fmt.Errorf("odd value/unit pairing in %q", line)
		}
		r := Result{
			Name:       trimProcs(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", line, err)
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	return results, nil
}

// trimProcs strips the trailing -<GOMAXPROCS> go test appends to
// benchmark names, so files from machines with different core counts
// diff cleanly.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
