// Observability tours the simulator's introspection tools: a cycle-by-cycle
// pipeline event trace of one load's prefetch life cycle, and the per-PC
// profile showing which static loads RFP covers, which forward from stores,
// and which stall the commit head (the criticality signal).
//
// Run with:
//
//	go run ./examples/observability
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"

	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/trace"
)

func main() {
	spec, ok := trace.ByName("spec06_xalancbmk")
	if !ok {
		log.Fatal("workload missing")
	}
	c := core.New(config.Baseline().WithRFP(), spec.New())
	c.WarmCaches()
	c.EnableProfile()
	if err := c.Warmup(context.Background(), 30000); err != nil {
		log.Fatal(err)
	}

	// Capture a short window of pipeline events.
	var buf bytes.Buffer
	c.AttachPipeTrace(&buf, c.Cycle(), c.Cycle()+40)
	if _, err := c.Run(context.Background(), 30000); err != nil {
		log.Fatal(err)
	}
	c.AttachPipeTrace(nil, 0, 0)

	fmt.Println("pipeline events (40-cycle window):")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	shown := 0
	for _, l := range lines {
		// Show the RFP-relevant events plus a sample of the rest.
		if strings.Contains(l, "rfp-") || shown < 12 {
			fmt.Println(" ", l)
			shown++
		}
		if shown > 30 {
			fmt.Println("  ...", len(lines)-shown, "more events")
			break
		}
	}

	fmt.Println("\nper-PC load profile (top 15):")
	fmt.Println(c.Profile())
	fmt.Println("\nReading the table: high-coverage PCs are the strided chases RFP")
	fmt.Println("serves from the register file; Fwd counts store-forwarded stack")
	fmt.Println("reloads; HeadStalls marks the loads that block retirement — the")
	fmt.Println("criticality-targeted RFP mode (-run critical) prefetches only those.")
}
