// Upscaled evaluates RFP on the paper's futuristic Baseline-2x core
// (Section 5.1, Figure 12): a 10-wide machine with doubled execution
// units and L1 bandwidth. It also demonstrates the Figure 14 study —
// giving RFP dedicated L1 ports instead of leftover bandwidth.
//
// Run with:
//
//	go run ./examples/upscaled
package main

import (
	"context"
	"fmt"
	"log"

	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

var workloads = []string{
	"spec06_sjeng", "spec06_perlbench", "spec17_deepsjeng",
	"spec17_exchange2", "hadoop", "geekbench_int",
}

func main() {
	fmt.Println("RFP scaling with core resources:")
	fmt.Printf("%-28s %-9s %-9s\n", "configuration", "speedup", "coverage")

	report("baseline + RFP", config.Baseline(), config.Baseline().WithRFP())

	dedicated := config.Baseline().WithRFP()
	dedicated.RFPDedicatedPorts = dedicated.LoadPorts
	report("baseline + RFP (ded. ports)", config.Baseline(), dedicated)

	report("baseline-2x + RFP", config.Baseline2x(), config.Baseline2x().WithRFP())
}

func report(name string, baseCfg, featCfg config.Core) {
	var sp, cov []float64
	for _, wname := range workloads {
		spec, ok := trace.ByName(wname)
		if !ok {
			log.Fatalf("workload %s missing", wname)
		}
		base := run(baseCfg, spec)
		feat := run(featCfg, spec)
		sp = append(sp, stats.Speedup(base, feat))
		cov = append(cov, feat.RFPCoverage())
	}
	fmt.Printf("%-28s %-9s %-9s\n", name,
		stats.Pct(stats.GeoMeanSpeedup(sp)), stats.Pct(stats.Mean(cov)))
}

func run(cfg config.Core, spec trace.Spec) *stats.Sim {
	c := core.New(cfg, spec.New())
	c.WarmCaches()
	if err := c.Warmup(context.Background(), 20000); err != nil {
		log.Fatal(err)
	}
	st, err := c.Run(context.Background(), 40000)
	if err != nil {
		log.Fatal(err)
	}
	return st
}
