// Vp-vs-rfp contrasts Register File Prefetching with load value prediction
// (the paper's Section 5.3): VP breaks true data dependencies but needs
// near-perfect accuracy because a miss costs a pipeline flush, so its
// coverage is small; RFP tolerates mispredictions (the load just re-reads
// the cache) so it can run at low confidence and cover far more loads.
// Because they help different loads, the fusion wins.
//
// Run with:
//
//	go run ./examples/vp-vs-rfp
package main

import (
	"context"
	"fmt"
	"log"

	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

var workloads = []string{
	"spec06_perlbench", "spec06_xalancbmk", "spec06_sjeng",
	"spec17_deepsjeng", "hadoop", "sysmark_office",
}

func main() {
	schemes := []struct {
		name string
		cfg  config.Core
	}{
		{"baseline", config.Baseline()},
		{"VP (EVES)", config.Baseline().WithVP(config.VPEVES)},
		{"RFP", config.Baseline().WithRFP()},
		{"VP + RFP", config.Baseline().WithVP(config.VPEVES).WithRFP()},
	}

	var base []*stats.Sim
	fmt.Printf("%-12s %-10s %-12s %-12s\n", "scheme", "speedup", "VP coverage", "RFP coverage")
	for i, s := range schemes {
		runs := runAll(s.cfg)
		if i == 0 {
			base = runs
			fmt.Printf("%-12s %-10s\n", s.name, "-")
			continue
		}
		var sp, vpCov, rfpCov []float64
		for j := range runs {
			sp = append(sp, stats.Speedup(base[j], runs[j]))
			vpCov = append(vpCov, runs[j].VPCoverage())
			rfpCov = append(rfpCov, runs[j].RFPCoverage())
		}
		fmt.Printf("%-12s %-10s %-12s %-12s\n", s.name,
			stats.Pct(stats.GeoMeanSpeedup(sp)),
			stats.Pct(stats.Mean(vpCov)), stats.Pct(stats.Mean(rfpCov)))
	}
	fmt.Println("\nVP and RFP are synergistic: the fusion covers loads neither reaches alone.")
}

func runAll(cfg config.Core) []*stats.Sim {
	var out []*stats.Sim
	for _, name := range workloads {
		spec, ok := trace.ByName(name)
		if !ok {
			log.Fatalf("workload %s missing", name)
		}
		c := core.New(cfg, spec.New())
		c.WarmCaches()
		if err := c.Warmup(context.Background(), 20000); err != nil {
			log.Fatal(err)
		}
		st, err := c.Run(context.Background(), 40000)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, st)
	}
	return out
}
