// Memwall reproduces the paper's motivating observation (Figures 1 and 2):
// the memory wall is not monolithic. Although the L1 hit latency is 40x
// lower than DRAM latency, so many loads hit the L1 (~93%) that an oracle
// serving L1 hits at register-file latency is worth about as much as an
// oracle that eliminates DRAM latency.
//
// Run with:
//
//	go run ./examples/memwall
package main

import (
	"context"
	"fmt"
	"log"

	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

// A representative slice of the suite keeps this example fast.
var workloads = []string{
	"spec06_mcf", "spec06_hmmer", "spec06_xalancbmk", "spec06_wrf",
	"spec17_x264", "spark", "geekbench_int", "lammps",
}

func main() {
	base := runAll(config.Baseline())

	// Figure 2: where do loads get their data?
	fmt.Println("Load distribution across the hierarchy (Figure 2):")
	var frac [stats.NumLevels]float64
	for _, st := range base {
		for l := 0; l < stats.NumLevels; l++ {
			frac[l] += st.LoadLevelFrac(l) / float64(len(base))
		}
	}
	for l := 0; l < stats.NumLevels; l++ {
		fmt.Printf("  %-5s %s\n", stats.LevelName(l), stats.Pct(frac[l]))
	}

	// Figure 1: oracle prefetching between adjacent levels.
	fmt.Println("\nOracle prefetch headroom (Figure 1):")
	for _, o := range []config.OracleMode{
		config.OracleL1ToRF, config.OracleL2ToL1,
		config.OracleLLCToL2, config.OracleMemToLLC,
	} {
		oracle := runAll(config.Baseline().WithOracle(o))
		var sp []float64
		for i := range base {
			sp = append(sp, stats.Speedup(base[i], oracle[i]))
		}
		fmt.Printf("  %-8s %s\n", o, stats.Pct(stats.GeoMeanSpeedup(sp)))
	}
	fmt.Println("\nDespite a 40x latency gap, the L1->RF and Mem->LLC walls are comparable.")

	// The other side of the wall: cache prefetchers remove misses instead
	// of hiding hit latency (docs/prefetchers.md). SPP is the non-default
	// scheme here — signature-path lookahead rather than next-line
	// streaming — composed with RFP on top.
	fmt.Println("\nL1 prefetcher zoo under RFP (speedup vs plain baseline):")
	for _, name := range []string{"stream", "spp"} {
		runs := runAll(config.Baseline().WithRFP().WithPrefetcher(name))
		var sp []float64
		var cov, acc float64
		for i := range base {
			sp = append(sp, stats.Speedup(base[i], runs[i]))
			cov += runs[i].L1PFCoverage() / float64(len(runs))
			acc += runs[i].L1PFAccuracy() / float64(len(runs))
		}
		fmt.Printf("  rfp+%-7s %s  (L1PF coverage %s, accuracy %s)\n",
			name, stats.Pct(stats.GeoMeanSpeedup(sp)), stats.Pct(cov), stats.Pct(acc))
	}
}

func runAll(cfg config.Core) []*stats.Sim {
	var out []*stats.Sim
	for _, name := range workloads {
		spec, ok := trace.ByName(name)
		if !ok {
			log.Fatalf("workload %s missing", name)
		}
		c := core.New(cfg, spec.New())
		c.WarmCaches()
		if err := c.Warmup(context.Background(), 20000); err != nil {
			log.Fatal(err)
		}
		st, err := c.Run(context.Background(), 40000)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, st)
	}
	return out
}
