// Quickstart: simulate one workload on the Tiger-Lake-like baseline with
// and without Register File Prefetching, and print the headline effect.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
)

func main() {
	spec, ok := trace.ByName("spec06_xalancbmk")
	if !ok {
		log.Fatal("workload missing from catalog")
	}

	// A run is: build a core for a config + workload, warm the caches,
	// warm the predictors, then measure.
	measure := func(cfg config.Core) *stats.Sim {
		c := core.New(cfg, spec.New())
		c.WarmCaches()
		if err := c.Warmup(context.Background(), 30000); err != nil {
			log.Fatal(err)
		}
		st, err := c.Run(context.Background(), 60000)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	base := measure(config.Baseline())
	rfp := measure(config.Baseline().WithRFP())

	fmt.Printf("workload          %s\n", spec)
	fmt.Printf("baseline IPC      %.3f\n", base.IPC())
	fmt.Printf("with RFP IPC      %.3f (%s speedup)\n", rfp.IPC(), stats.Pct(stats.Speedup(base, rfp)))
	fmt.Printf("RFP coverage      %s of loads served from the register file\n", stats.Pct(rfp.RFPCoverage()))
	fmt.Printf("RFP wrong         %s of loads re-accessed the L1\n", stats.Pct(rfp.RFPWrongFrac()))
}
