// Owntrace demonstrates the bring-your-own-trace path: materialize a
// workload into the compact binary trace format, then feed it back to the
// simulator — the same flow an external Pin/DynamoRIO trace would use via
// cmd/tracegen and rfpsim -trace.
//
// Run with:
//
//	go run ./examples/owntrace
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rfpsim/internal/config"
	"rfpsim/internal/core"
	"rfpsim/internal/isa"
	"rfpsim/internal/stats"
	"rfpsim/internal/trace"
	"rfpsim/internal/tracefile"
)

func main() {
	spec, ok := trace.ByName("spec06_astar")
	if !ok {
		log.Fatal("workload missing")
	}
	path := filepath.Join(os.TempDir(), "astar.rfpt")

	// 1. Capture 200k uops into a trace file.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w := tracefile.NewWriter(f)
	gen := spec.New()
	var op isa.MicroOp
	for i := 0; i < 200000; i++ {
		gen.Next(&op)
		if err := w.Write(&op); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	info, _ := f.Stat()
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d uops to %s (%.1f bytes/uop)\n",
		w.Count(), path, float64(info.Size())/float64(w.Count()))

	// 2. Replay the trace through the simulator, with and without RFP.
	run := func(cfg config.Core) *stats.Sim {
		rf, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer rf.Close()
		r, err := tracefile.NewReader(rf, "astar.rfpt")
		if err != nil {
			log.Fatal(err)
		}
		c := core.New(cfg, r)
		if err := c.Warmup(context.Background(), 50000); err != nil {
			log.Fatal(err)
		}
		st, err := c.Run(context.Background(), 100000)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}
	base := run(config.Baseline())
	rfp := run(config.Baseline().WithRFP())
	fmt.Printf("replayed: baseline IPC %.3f, RFP IPC %.3f (%s), coverage %s\n",
		base.IPC(), rfp.IPC(),
		stats.Pct(stats.Speedup(base, rfp)), stats.Pct(rfp.RFPCoverage()))

	os.Remove(path)
}
